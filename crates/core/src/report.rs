//! Usage reports — the tables the measurement program publishes.
//!
//! Reports are computed from the accounting database plus a labeling (either
//! ground truth, to characterize the workload, or the classifier's output,
//! to show what the deployed measurement would report).

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;
use tg_accounting::{AccountingDb, ChargePolicy};
use tg_des::metrics::MetricsSnapshot;
use tg_des::stats::TimeBuckets;
use tg_des::SimDuration;
use tg_workload::{JobId, Modality};

/// Per-modality usage totals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModalityShares {
    /// Distinct accounts observed per modality, [`Modality::ALL`] order.
    pub accounts: Vec<u64>,
    /// Jobs per modality.
    pub jobs: Vec<u64>,
    /// Normalized units per modality.
    pub nus: Vec<f64>,
    /// Mean queue wait (seconds) per modality.
    pub mean_wait_s: Vec<f64>,
}

impl ModalityShares {
    /// Compute shares from the database under `labels`.
    pub fn compute(
        db: &AccountingDb,
        labels: &HashMap<JobId, Modality>,
        charges: &ChargePolicy,
    ) -> Self {
        let n = Modality::ALL.len();
        let mut accounts: Vec<HashSet<_>> = vec![HashSet::new(); n];
        let mut jobs = vec![0u64; n];
        let mut nus = vec![0.0f64; n];
        let mut wait_sum = vec![0.0f64; n];
        for r in &db.jobs {
            let Some(&m) = labels.get(&r.job) else {
                continue;
            };
            let i = m.index();
            accounts[i].insert(r.user);
            jobs[i] += 1;
            nus[i] += charges.nu(r);
            wait_sum[i] += r.wait().as_secs_f64();
        }
        let mean_wait_s = (0..n)
            .map(|i| {
                if jobs[i] > 0 {
                    wait_sum[i] / jobs[i] as f64
                } else {
                    0.0
                }
            })
            .collect();
        ModalityShares {
            accounts: accounts.into_iter().map(|s| s.len() as u64).collect(),
            jobs,
            nus,
            mean_wait_s,
        }
    }

    /// Total NUs across modalities.
    pub fn total_nus(&self) -> f64 {
        self.nus.iter().sum()
    }

    /// Total jobs.
    pub fn total_jobs(&self) -> u64 {
        self.jobs.iter().sum()
    }

    /// NU share of a modality, in `[0, 1]`.
    pub fn nu_share(&self, m: Modality) -> f64 {
        let total = self.total_nus();
        if total <= 0.0 {
            0.0
        } else {
            self.nus[m.index()] / total
        }
    }

    /// Job share of a modality.
    pub fn job_share(&self, m: Modality) -> f64 {
        let total = self.total_jobs();
        if total == 0 {
            0.0
        } else {
            self.jobs[m.index()] as f64 / total as f64
        }
    }
}

impl fmt::Display for ModalityShares {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>9} {:>10} {:>14} {:>8} {:>8} {:>12}",
            "modality", "accounts", "jobs", "NUs", "job%", "NU%", "mean wait"
        )?;
        for m in Modality::ALL {
            let i = m.index();
            writeln!(
                f,
                "{:<12} {:>9} {:>10} {:>14.0} {:>7.1}% {:>7.1}% {:>11.0}s",
                m.name(),
                self.accounts[i],
                self.jobs[i],
                self.nus[i],
                100.0 * self.job_share(m),
                100.0 * self.nu_share(m),
                self.mean_wait_s[i],
            )?;
        }
        Ok(())
    }
}

/// A per-modality time series of NUs in fixed buckets (F1's data).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModalityTrend {
    /// Bucket width.
    pub bucket: SimDuration,
    /// `series[modality][bucket]` = NUs charged to jobs *completing* in that
    /// bucket.
    pub series: Vec<Vec<f64>>,
}

impl ModalityTrend {
    /// Compute the trend under `labels`.
    pub fn compute(
        db: &AccountingDb,
        labels: &HashMap<JobId, Modality>,
        charges: &ChargePolicy,
        bucket: SimDuration,
    ) -> Self {
        let mut buckets: Vec<TimeBuckets> = Modality::ALL
            .iter()
            .map(|_| TimeBuckets::new(bucket))
            .collect();
        for r in &db.jobs {
            if let Some(&m) = labels.get(&r.job) {
                buckets[m.index()].add(r.end, charges.nu(r));
            }
        }
        let max_len = buckets.iter().map(|b| b.sums().len()).max().unwrap_or(0);
        let series = buckets
            .into_iter()
            .map(|b| {
                let mut v = b.sums().to_vec();
                v.resize(max_len, 0.0);
                v
            })
            .collect();
        ModalityTrend { bucket, series }
    }

    /// The series for one modality.
    pub fn of(&self, m: Modality) -> &[f64] {
        &self.series[m.index()]
    }

    /// Share of a modality within one bucket.
    pub fn share_in_bucket(&self, m: Modality, bucket: usize) -> f64 {
        let total: f64 = self.series.iter().filter_map(|s| s.get(bucket)).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.series[m.index()].get(bucket).copied().unwrap_or(0.0) / total
    }
}

/// Per-field-of-science usage totals — the "usage by discipline" table
/// every federation annual report carries. Projects carry a field label;
/// job records carry the project.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldShares {
    /// `(field, jobs, NUs)` rows, ordered by field name.
    pub rows: Vec<(String, u64, f64)>,
}

impl FieldShares {
    /// Compute from the database and the population's project directory.
    /// Records charging a project the directory doesn't know land in
    /// `"(unknown)"` — a data-quality signal, not an error.
    pub fn compute(
        db: &AccountingDb,
        projects: &[tg_workload::Project],
        charges: &ChargePolicy,
    ) -> Self {
        use std::collections::BTreeMap;
        let mut by_field: BTreeMap<&str, (u64, f64)> = BTreeMap::new();
        for r in &db.jobs {
            let field = projects
                .get(r.project.index())
                .map(|p| p.field.as_str())
                .unwrap_or("(unknown)");
            let e = by_field.entry(field).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += charges.nu(r);
        }
        FieldShares {
            rows: by_field
                .into_iter()
                .map(|(f, (jobs, nus))| (f.to_string(), jobs, nus))
                .collect(),
        }
    }

    /// Total NUs across fields.
    pub fn total_nus(&self) -> f64 {
        self.rows.iter().map(|&(_, _, nus)| nus).sum()
    }
}

impl fmt::Display for FieldShares {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total_nus().max(1e-12);
        writeln!(
            f,
            "{:<12} {:>10} {:>14} {:>7}",
            "field", "jobs", "NUs", "NU%"
        )?;
        for (field, jobs, nus) in &self.rows {
            writeln!(
                f,
                "{field:<12} {jobs:>10} {nus:>14.0} {:>6.1}%",
                100.0 * nus / total
            )?;
        }
        Ok(())
    }
}

/// Per-gateway reach: how many *distinct end users* each science gateway
/// served, and with how many jobs — the headline number gateway projects
/// report (and exactly what per-account accounting cannot see).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatewayReach {
    /// `(gateway, distinct end users, jobs)` rows, ordered by gateway id.
    pub rows: Vec<(tg_workload::GatewayId, u64, u64)>,
}

impl GatewayReach {
    /// Compute from the gateway-attribute stream.
    pub fn compute(db: &AccountingDb) -> Self {
        use std::collections::{BTreeMap, HashSet};
        let mut per_gateway: BTreeMap<tg_workload::GatewayId, (HashSet<u64>, u64)> =
            BTreeMap::new();
        for attr in &db.gateway_attrs {
            let e = per_gateway
                .entry(attr.gateway)
                .or_insert_with(|| (HashSet::new(), 0));
            e.0.insert(attr.end_user);
            e.1 += 1;
        }
        GatewayReach {
            rows: per_gateway
                .into_iter()
                .map(|(gw, (users, jobs))| (gw, users.len() as u64, jobs))
                .collect(),
        }
    }

    /// Total distinct end users across gateways (end users using two
    /// gateways count twice — each gateway has its own id space, as in
    /// production).
    pub fn total_end_users(&self) -> u64 {
        self.rows.iter().map(|&(_, users, _)| users).sum()
    }
}

impl fmt::Display for GatewayReach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<8} {:>12} {:>10}", "gateway", "end users", "jobs")?;
        for (gw, users, jobs) in &self.rows {
            writeln!(f, "{gw:<8} {users:>12} {jobs:>10}")?;
        }
        Ok(())
    }
}

/// The full usage report bundle (T1's content).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UsageReport {
    /// Usage shares.
    pub shares: ModalityShares,
    /// The taxonomy table: modality name → measurement mechanism.
    pub taxonomy: Vec<(String, String)>,
}

impl UsageReport {
    /// Build the report.
    pub fn compute(
        db: &AccountingDb,
        labels: &HashMap<JobId, Modality>,
        charges: &ChargePolicy,
    ) -> Self {
        UsageReport {
            shares: ModalityShares::compute(db, labels, charges),
            taxonomy: Modality::ALL
                .iter()
                .map(|m| (m.name().to_string(), m.measured_by().to_string()))
                .collect(),
        }
    }
}

impl fmt::Display for UsageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Usage modality taxonomy and measurement mechanisms:")?;
        for (name, mech) in &self.taxonomy {
            writeln!(f, "  {name:<12} measured by {mech}")?;
        }
        writeln!(f)?;
        self.shares.fmt(f)
    }
}

/// Human-readable rendering of a [`MetricsSnapshot`] — counters, gauge
/// summaries, series sizes, and the engine profile if attached.
#[derive(Debug, Clone)]
pub struct MetricsReport<'a>(pub &'a MetricsSnapshot);

impl fmt::Display for MetricsReport<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = self.0;
        writeln!(f, "Run metrics at t={:.0}s", snap.at_secs)?;
        if let Some(p) = &snap.engine {
            writeln!(
                f,
                "  engine: {} events in {:.3}s ({:.0} events/s), peak queue {}",
                p.events_delivered, p.wall_seconds, p.events_per_sec, p.peak_queue_len
            )?;
        }
        for c in &snap.counters {
            writeln!(f, "  {:<28} {:>14}", c.name, c.value)?;
        }
        for g in &snap.gauges {
            writeln!(
                f,
                "  {:<28} avg {:>10.2}  peak {:>8.0}  now {:>8.0}",
                g.name, g.average, g.peak, g.current
            )?;
        }
        for s in &snap.series {
            writeln!(f, "  {:<28} {:>10} samples", s.name, s.points.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_accounting::JobRecord;
    use tg_des::SimTime;
    use tg_model::SiteId;
    use tg_workload::{ProjectId, SubmitInterface, UserId};

    fn rec(id: usize, user: usize, end_h: u64, cores: usize) -> JobRecord {
        JobRecord {
            job: JobId(id),
            user: UserId(user),
            project: ProjectId(0),
            site: SiteId(0),
            submit: SimTime::ZERO,
            start: SimTime::from_secs(100),
            end: SimTime::from_hours(end_h),
            cores,
            interface: SubmitInterface::CommandLine,
            used_hw: false,
            input_mb: 0.0,
            output_mb: 0.0,
        }
    }

    fn setup() -> (AccountingDb, HashMap<JobId, Modality>, ChargePolicy) {
        let mut db = AccountingDb::new();
        db.add_job(rec(0, 1, 10, 100)); // batch, ~1000 core-hours
        db.add_job(rec(1, 2, 1, 1)); // gateway, ~1 core-hour
        db.add_job(rec(2, 2, 1, 1)); // gateway
        let labels: HashMap<_, _> = [
            (JobId(0), Modality::BatchComputing),
            (JobId(1), Modality::ScienceGateway),
            (JobId(2), Modality::ScienceGateway),
        ]
        .into_iter()
        .collect();
        (db, labels, ChargePolicy::new(vec![1.0]))
    }

    #[test]
    fn shares_aggregate_accounts_jobs_nus() {
        let (db, labels, charges) = setup();
        let s = ModalityShares::compute(&db, &labels, &charges);
        assert_eq!(s.total_jobs(), 3);
        assert_eq!(s.jobs[Modality::ScienceGateway.index()], 2);
        assert_eq!(s.accounts[Modality::ScienceGateway.index()], 1);
        assert!(s.nu_share(Modality::BatchComputing) > 0.99);
        assert!(s.job_share(Modality::ScienceGateway) > 0.6);
        // Shares sum to 1.
        let total: f64 = Modality::ALL.iter().map(|&m| s.nu_share(m)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unlabeled_jobs_are_skipped() {
        let (db, mut labels, charges) = setup();
        labels.remove(&JobId(0));
        let s = ModalityShares::compute(&db, &labels, &charges);
        assert_eq!(s.total_jobs(), 2);
    }

    #[test]
    fn trend_buckets_by_completion() {
        let (db, labels, charges) = setup();
        let t = ModalityTrend::compute(&db, &labels, &charges, SimDuration::from_hours(5));
        // Job 0 ends at hour 10 → bucket 2; jobs 1,2 end hour 1 → bucket 0.
        assert!(t.of(Modality::BatchComputing)[2] > 0.0);
        assert!(t.of(Modality::ScienceGateway)[0] > 0.0);
        assert_eq!(t.of(Modality::BatchComputing).len(), 3);
        assert!((t.share_in_bucket(Modality::ScienceGateway, 0) - 1.0).abs() < 1e-12);
        assert_eq!(t.share_in_bucket(Modality::Workflow, 1), 0.0);
    }

    #[test]
    fn report_displays_taxonomy_and_table() {
        let (db, labels, charges) = setup();
        let r = UsageReport::compute(&db, &labels, &charges);
        let text = r.to_string();
        assert!(text.contains("gateway"));
        assert!(text.contains("measured by"));
        assert!(text.contains("NU%"));
        assert_eq!(r.taxonomy.len(), Modality::ALL.len());
    }

    #[test]
    fn field_shares_group_by_project_directory() {
        let (db, _, charges) = setup();
        let projects = vec![tg_workload::Project::new(
            tg_workload::ProjectId(0),
            1e6,
            "astro",
        )];
        let fs = FieldShares::compute(&db, &projects, &charges);
        assert_eq!(fs.rows.len(), 1);
        assert_eq!(fs.rows[0].0, "astro");
        assert_eq!(fs.rows[0].1, 3);
        assert!(fs.total_nus() > 0.0);
        let text = fs.to_string();
        assert!(text.contains("astro"));
        assert!(text.contains("100.0%"));
        // Unknown projects are flagged, not dropped.
        let fs2 = FieldShares::compute(&db, &[], &charges);
        assert_eq!(fs2.rows[0].0, "(unknown)");
    }

    #[test]
    fn gateway_reach_counts_distinct_end_users() {
        use tg_accounting::GatewayAttribute;
        use tg_workload::GatewayId;
        let mut db = AccountingDb::new();
        for (job, end_user) in [(0, 10), (1, 10), (2, 11), (3, 42)] {
            db.add_gateway_attr(GatewayAttribute {
                gateway: GatewayId(if job < 3 { 0 } else { 1 }),
                job: JobId(job),
                end_user,
            });
        }
        let reach = GatewayReach::compute(&db);
        assert_eq!(reach.rows.len(), 2);
        assert_eq!(
            reach.rows[0],
            (GatewayId(0), 2, 3),
            "two people, three jobs"
        );
        assert_eq!(reach.rows[1], (GatewayId(1), 1, 1));
        assert_eq!(reach.total_end_users(), 3);
        let text = reach.to_string();
        assert!(text.contains("end users"));
        assert!(text.contains("gw0"));
    }

    #[test]
    fn metrics_report_renders_all_sections() {
        use tg_des::metrics::{EngineProfile, MetricsRegistry};
        let mut m = MetricsRegistry::enabled();
        let c = m.counter("jobs.enqueued");
        m.add(c, 9);
        let g = m.gauge("busy_cores.alpha", SimTime::ZERO, 0.0);
        m.gauge_set(g, SimTime::from_secs(10), 4.0);
        let s = m.series("queue_len.alpha");
        m.push(s, SimTime::from_secs(5), 2.0);
        let mut snap = m.snapshot(SimTime::from_secs(20)).unwrap();
        snap.engine = Some(EngineProfile::new(100, 0.01, 7));
        let text = MetricsReport(&snap).to_string();
        assert!(text.contains("jobs.enqueued"));
        assert!(text.contains("busy_cores.alpha"));
        assert!(text.contains("1 samples"));
        assert!(text.contains("peak queue 7"));
    }

    #[test]
    fn empty_db_is_all_zero() {
        let db = AccountingDb::new();
        let labels = HashMap::new();
        let s = ModalityShares::compute(&db, &labels, &ChargePolicy::new(vec![1.0]));
        assert_eq!(s.total_jobs(), 0);
        assert_eq!(s.nu_share(Modality::BatchComputing), 0.0);
    }
}
