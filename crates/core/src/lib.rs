//! # tg-core — usage-modality measurement on a simulated federation
//!
//! The reproduction's headline pipeline. The paper proposes *measuring usage
//! modalities* from the records a federated cyberinfrastructure collects;
//! this crate closes the loop on a simulated TeraGrid-like federation:
//!
//! 1. [`sim`] — the event-driven driver: routes generated jobs through the
//!    metascheduler, per-site batch schedulers, the reconfigurable
//!    partitions, data staging, and emits *production-faithful* accounting
//!    records (no ground truth leaks into the record stream).
//! 2. [`classify`] — the measurement pipeline: infers each job's modality
//!    from the accounting database alone, in two modes — with the gateway
//!    attributes / interface tags TeraGrid added, and a records-only
//!    baseline showing why those attributes were needed.
//! 3. [`accuracy`] — confusion matrix and precision/recall/F1 against the
//!    generator's hidden ground truth.
//! 4. [`report`] — the usage-share tables and trend series the paper's
//!    program would publish.
//! 5. [`scenario`] — end-to-end assembly: config → federation + workload →
//!    simulation → outputs.
//! 6. [`runner`] — deterministic parallel replication (one thread per seed,
//!    bit-identical results regardless of thread count).
//!
//! ```
//! use tg_core::{classify_all, Accuracy, ClassifierMode, ScenarioConfig};
//!
//! // Small federation, two days of load, one seed.
//! let mut cfg = ScenarioConfig::baseline(60, 2);
//! cfg.sites[0].batch_nodes = 32;
//! cfg.sites[1].batch_nodes = 32;
//! cfg.sites[2].batch_nodes = 16;
//! let out = cfg.build().run(7);
//! assert!(!out.db.jobs.is_empty());
//!
//! // Measure modalities from records alone, score against hidden truth.
//! let inferred = classify_all(&out.db, ClassifierMode::WithAttributes);
//! let accuracy = Accuracy::score(&out.truth, &inferred);
//! assert!(accuracy.accuracy > 0.8);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod accuracy;
pub mod classify;
mod parallel;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod sim;
pub mod survey;

pub use accuracy::{Accuracy, ConfusionMatrix};
pub use classify::{classify_all, ClassifierMode};
pub use report::{FieldShares, GatewayReach, MetricsReport, ModalityShares, UsageReport};
pub use runner::{aggregate_profiles, replicate, replicate_with, run_sweep, Replication};
pub use scenario::{Governor, RecordStreaming, RunOptions, Scenario, ScenarioConfig, SimOutput};
pub use sim::{GridSim, StatsReport};

// Observability types surfaced from the DES substrate.
pub use survey::{run_survey, SurveyDesign, SurveyResult};
pub use tg_des::metrics::{EngineProfile, MetricsSnapshot, SyncProfile};

// Fault injection rides the scenario config; re-export the spec/report
// types so experiment binaries need only tg-core.
pub use tg_fault::{
    DegradeWindow, FaultReport, FaultSpec, IngestFaults, NodeCrashSpec, OutagePolicy, OutageWindow,
};

// The taxonomy lives with the workload generator (ground truth labels);
// re-export it as part of this crate's public face.
pub use tg_workload::Modality;
