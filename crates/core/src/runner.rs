//! Deterministic parallel replication.
//!
//! Experiments need confidence intervals, so every point is run at several
//! seeds. Replications are embarrassingly parallel *between* runs and
//! strictly sequential *within* one run — so results are bit-identical
//! whatever the thread count. Threads are scoped (no detached state) and
//! fan results back through a crossbeam channel; outputs are re-ordered by
//! replication index before returning.

use crate::scenario::{RunOptions, Scenario, SimOutput};
use crossbeam::channel;
use std::thread;
use tg_des::metrics::EngineProfile;

/// One replication's result.
#[derive(Debug)]
pub struct Replication {
    /// Replication index (0-based).
    pub index: usize,
    /// The seed used (`base_seed + index`).
    pub seed: u64,
    /// The run's output.
    pub output: SimOutput,
}

/// Run `count` replications of `scenario` at seeds `base_seed..base_seed+count`,
/// using up to `threads` worker threads (clamped to `count`; 0 means one
/// thread per replication up to the machine's parallelism).
pub fn replicate(
    scenario: &Scenario,
    base_seed: u64,
    count: usize,
    threads: usize,
) -> Vec<Replication> {
    replicate_with(scenario, base_seed, count, threads, &RunOptions::default())
}

/// [`replicate`] with observability options. Metrics are collected on every
/// replication; the JSONL trace (if requested) is written by replication 0
/// only — one representative trace rather than `count` interleaved files.
pub fn replicate_with(
    scenario: &Scenario,
    base_seed: u64,
    count: usize,
    threads: usize,
    opts: &RunOptions,
) -> Vec<Replication> {
    assert!(count > 0, "need at least one replication");
    let workers = if threads == 0 {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(count)
    } else {
        threads.min(count)
    };
    let (task_tx, task_rx) = channel::unbounded::<usize>();
    let (result_tx, result_rx) = channel::unbounded::<Replication>();
    for i in 0..count {
        task_tx.send(i).expect("channel open");
    }
    drop(task_tx);

    thread::scope(|scope| {
        for _ in 0..workers {
            let task_rx = task_rx.clone();
            let result_tx = result_tx.clone();
            scope.spawn(move || {
                while let Ok(index) = task_rx.recv() {
                    let seed = base_seed + index as u64;
                    let rep_opts = RunOptions {
                        trace_path: if index == 0 {
                            opts.trace_path.clone()
                        } else {
                            None
                        },
                        ..opts.clone()
                    };
                    let output = scenario.run_with(seed, &rep_opts);
                    result_tx
                        .send(Replication {
                            index,
                            seed,
                            output,
                        })
                        .expect("main thread alive");
                }
            });
        }
        drop(result_tx);
        let mut results: Vec<Replication> = result_rx.iter().collect();
        results.sort_by_key(|r| r.index);
        results
    })
}

/// Run one closure per sweep point in parallel, returning results in point
/// order whatever the thread count or completion order.
///
/// This is the sweep-level complement to [`replicate`]: experiment binaries
/// iterate a config grid where each cell is itself a (sequential or
/// parallel) replication batch. Running the *cells* in parallel keeps each
/// cell's seed stream untouched — bit-identical to the serial loop — while
/// filling all cores. `threads == 0` uses the machine's parallelism.
///
/// The closure gets `(index, &point)` so it can seed or label per-cell.
pub fn run_sweep<P, R, F>(points: &[P], threads: usize, f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(usize, &P) -> R + Sync,
{
    if points.is_empty() {
        return Vec::new();
    }
    let workers = if threads == 0 {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(points.len())
    } else {
        threads.min(points.len())
    };
    if workers <= 1 {
        return points.iter().enumerate().map(|(i, p)| f(i, p)).collect();
    }
    let (task_tx, task_rx) = channel::unbounded::<usize>();
    let (result_tx, result_rx) = channel::unbounded::<(usize, R)>();
    for i in 0..points.len() {
        task_tx.send(i).expect("channel open");
    }
    drop(task_tx);
    thread::scope(|scope| {
        for _ in 0..workers {
            let task_rx = task_rx.clone();
            let result_tx = result_tx.clone();
            let f = &f;
            scope.spawn(move || {
                while let Ok(index) = task_rx.recv() {
                    let out = f(index, &points[index]);
                    if result_tx.send((index, out)).is_err() {
                        return; // main thread gone; nothing left to report to
                    }
                }
            });
        }
        drop(result_tx);
        let mut results: Vec<(usize, R)> = result_rx.iter().collect();
        results.sort_by_key(|&(i, _)| i);
        results.into_iter().map(|(_, r)| r).collect()
    })
}

/// Collect a per-replication scalar metric and summarize it as
/// `(mean, 95% CI half-width)`.
pub fn summarize(replications: &[Replication], metric: impl Fn(&SimOutput) -> f64) -> (f64, f64) {
    let values: Vec<f64> = replications.iter().map(|r| metric(&r.output)).collect();
    tg_des::stats::ci_student_t(&values)
}

/// Aggregate the wall-clock engine profiles of a replication batch: total
/// events and wall time, overall delivery rate, the worst peak queue, and
/// (where measured) the worst peak RSS plus summed allocation traffic.
pub fn aggregate_profiles(replications: &[Replication]) -> EngineProfile {
    let events: u64 = replications
        .iter()
        .map(|r| r.output.profile.events_delivered)
        .sum();
    let wall: f64 = replications
        .iter()
        .map(|r| r.output.profile.wall_seconds)
        .sum();
    let peak = replications
        .iter()
        .map(|r| r.output.profile.peak_queue_len)
        .max()
        .unwrap_or(0);
    let mut agg = EngineProfile::new(events, wall, peak as usize);
    agg.peak_rss_bytes = replications
        .iter()
        .filter_map(|r| r.output.profile.peak_rss_bytes)
        .max();
    let sum_opt = |f: fn(&EngineProfile) -> Option<u64>| {
        replications
            .iter()
            .filter_map(|r| f(&r.output.profile))
            .fold(None, |acc: Option<u64>, v| Some(acc.unwrap_or(0) + v))
    };
    agg.allocations = sum_opt(|p| p.allocations);
    agg.allocated_bytes = sum_opt(|p| p.allocated_bytes);
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    fn tiny() -> Scenario {
        let mut cfg = ScenarioConfig::baseline(30, 2);
        cfg.sites[0].batch_nodes = 32;
        cfg.sites[1].batch_nodes = 32;
        cfg.sites[2].batch_nodes = 16;
        cfg.build()
    }

    #[test]
    fn parallel_equals_sequential() {
        let s = tiny();
        let par = replicate(&s, 100, 4, 4);
        let seq = replicate(&s, 100, 4, 1);
        assert_eq!(par.len(), 4);
        for (a, b) in par.iter().zip(&seq) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.output.db.jobs, b.output.db.jobs);
            assert_eq!(a.output.end, b.output.end);
        }
    }

    #[test]
    fn seeds_are_consecutive_and_outputs_ordered() {
        let s = tiny();
        let reps = replicate(&s, 7, 3, 0);
        let seeds: Vec<u64> = reps.iter().map(|r| r.seed).collect();
        assert_eq!(seeds, vec![7, 8, 9]);
        let idx: Vec<usize> = reps.iter().map(|r| r.index).collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn replicate_with_metrics_collects_everywhere() {
        let s = tiny();
        let reps = replicate_with(&s, 5, 2, 2, &RunOptions::with_metrics());
        assert_eq!(reps.len(), 2);
        for r in &reps {
            let snap = r.output.metrics.as_ref().expect("metrics on");
            assert_eq!(
                snap.counter_sum("completed.site."),
                r.output.db.jobs.len() as u64
            );
        }
        // Identical to an unobserved batch.
        let plain = replicate(&s, 5, 2, 2);
        for (a, b) in reps.iter().zip(&plain) {
            assert_eq!(a.output.db.jobs, b.output.db.jobs);
            assert!(b.output.metrics.is_none());
        }
        let agg = aggregate_profiles(&reps);
        assert_eq!(
            agg.events_delivered,
            reps.iter().map(|r| r.output.events_delivered).sum::<u64>()
        );
        assert!(agg.peak_queue_len > 0);
    }

    #[test]
    fn summarize_produces_ci() {
        let s = tiny();
        let reps = replicate(&s, 1, 3, 0);
        let (mean, hw) = summarize(&reps, |o| o.db.jobs.len() as f64);
        assert!(mean > 0.0);
        assert!(hw >= 0.0);
    }
}
