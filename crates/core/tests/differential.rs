//! Whole-scenario differential suite: optimized vs reference schedulers.
//!
//! The per-crate property tests (`tg-sched/tests/differential_prop.rs`)
//! compare decision streams on synthetic queues; this suite closes the loop
//! at the system level by running *entire scenarios* both ways —
//! `RunOptions::reference_schedulers` swaps in the frozen naive scheduler
//! ports — and asserting the outputs are identical record for record. Any
//! divergence in start order, backfill choice, or completion time would
//! show up in the accounting database or the event count.

use tg_core::{RunOptions, ScenarioConfig, SimOutput};

fn run_both(cfg: ScenarioConfig, seed: u64) -> (SimOutput, SimOutput) {
    let scenario = cfg.build();
    let fast = scenario.run_with(seed, &RunOptions::default());
    let slow = scenario.run_with(
        seed,
        &RunOptions {
            reference_schedulers: true,
            ..RunOptions::default()
        },
    );
    (fast, slow)
}

fn assert_identical(fast: &SimOutput, slow: &SimOutput) {
    assert_eq!(
        fast.events_delivered, slow.events_delivered,
        "event counts diverge"
    );
    assert_eq!(fast.end, slow.end, "end times diverge");
    assert_eq!(fast.db.jobs, slow.db.jobs, "job records diverge");
    assert_eq!(fast.db.transfers, slow.db.transfers);
    assert_eq!(fast.db.sessions, slow.db.sessions);
    assert_eq!(
        fast.fault_report, slow.fault_report,
        "fault outcomes diverge"
    );
}

#[test]
fn baseline_scenario_is_identical_under_reference_schedulers() {
    for seed in [9000, 9001] {
        let (fast, slow) = run_both(ScenarioConfig::baseline(60, 4), seed);
        assert!(fast.db.jobs.len() > 100, "scenario produced real load");
        assert_identical(&fast, &slow);
    }
}

#[test]
fn saturated_scenario_is_identical_under_reference_schedulers() {
    // Small sites + the baseline population → long queues, so the backfill
    // and drain paths (where the optimized index does real work) are hot.
    let mut cfg = ScenarioConfig::baseline(80, 3);
    for s in &mut cfg.sites {
        s.batch_nodes = (s.batch_nodes / 8).max(4);
    }
    let (fast, slow) = run_both(cfg, 424242);
    assert_identical(&fast, &slow);
}

#[test]
fn faulted_scenario_is_identical_under_reference_schedulers() {
    // Crash/outage kills exercise the out-of-order removal path
    // (`on_complete` for a job that is *not* the earliest-ending one).
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../configs/faults-demo.json"
    ))
    .expect("fault spec exists");
    let spec = serde_json::from_str(&text).expect("fault spec parses");
    let mut cfg = ScenarioConfig::baseline(60, 4);
    cfg.faults = Some(spec);
    let (fast, slow) = run_both(cfg, 31337);
    let fr = fast.fault_report.as_ref().expect("faults ran");
    assert!(
        fr.jobs_killed > 0 || fr.node_crashes > 0,
        "fault schedule actually fired: {fr:?}"
    );
    assert_identical(&fast, &slow);
}

#[test]
fn every_scheduler_kind_matches_its_reference() {
    use tg_sched::SchedulerKind;
    for kind in [
        SchedulerKind::Fcfs,
        SchedulerKind::Easy,
        SchedulerKind::Conservative,
        SchedulerKind::WeeklyDrain,
        SchedulerKind::FairshareEasy,
    ] {
        let mut cfg = ScenarioConfig::baseline(40, 3);
        cfg.scheduler = kind;
        // Shrink the machines so queues form under every policy.
        for s in &mut cfg.sites {
            s.batch_nodes = (s.batch_nodes / 4).max(8);
        }
        let (fast, slow) = run_both(cfg, 777);
        assert_eq!(
            fast.db.jobs, slow.db.jobs,
            "scheduler {kind:?} diverges from its reference"
        );
        assert_eq!(fast.end, slow.end);
        assert_eq!(fast.events_delivered, slow.events_delivered);
    }
}
