//! Online-observability differential suite.
//!
//! The live-stats layer (`crates/des/src/sketch.rs`, `crates/des/src/series.rs`,
//! wired through `GridSim` and the sharded engine) is an *observer*: enabling
//! it must not change a single byte of simulation output, and the report it
//! produces must itself be byte-identical at any `--threads N`. This suite
//! enforces both, and cross-checks the online sketches against the offline
//! trace analyzer within the sketch's documented error bound.

use std::io::BufRead;
use std::path::PathBuf;

use tg_core::{RunOptions, ScenarioConfig, SimOutput};
use tg_des::analyze::parse_span_line;
use tg_des::sketch::RELATIVE_ERROR;
use tg_des::{SpanKind, TraceAnalyzer};

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tg-obs-{tag}-{}.jsonl", std::process::id()))
}

fn observed(threads: usize) -> RunOptions {
    RunOptions {
        live_stats: true,
        threads,
        ..RunOptions::default()
    }
}

/// Every deterministic field of [`SimOutput`] must match between an observed
/// and an unobserved run (`stats` and `profile` are the intentional deltas).
fn assert_same_simulation(a: &SimOutput, b: &SimOutput, label: &str) {
    assert_eq!(a.events_delivered, b.events_delivered, "{label}: events");
    assert_eq!(a.end, b.end, "{label}: end time");
    assert_eq!(a.db.jobs, b.db.jobs, "{label}: job records");
    assert_eq!(a.db.transfers, b.db.transfers, "{label}: transfers");
    assert_eq!(a.db.sessions, b.db.sessions, "{label}: sessions");
    assert_eq!(a.db.rc_placements, b.db.rc_placements, "{label}: rc");
    assert_eq!(a.samples, b.samples, "{label}: sample series");
    assert_eq!(a.site_stats, b.site_stats, "{label}: site stats");
    assert_eq!(a.fault_report, b.fault_report, "{label}: fault report");
}

#[test]
fn live_stats_never_perturb_serial_results() {
    let cfg = ScenarioConfig::baseline(120, 7);
    let scenario = cfg.build();
    let plain = scenario.run_with(11, &RunOptions::default());
    let obs = scenario.run_with(11, &observed(0));
    assert!(plain.stats.is_none(), "unobserved run grew a stats report");
    let stats = obs.stats.as_ref().expect("observed run reports stats");
    assert!(stats.spans.spans > 0, "no spans recorded");
    assert_same_simulation(&plain, &obs, "serial observed-vs-not");
}

#[test]
fn live_stats_never_perturb_sharded_results() {
    let cfg = ScenarioConfig::baseline(120, 7);
    let scenario = cfg.build();
    let plain = scenario.run_with(11, &RunOptions::with_threads(4));
    let obs = scenario.run_with(11, &observed(4));
    assert!(obs.stats.is_some(), "sharded observed run reports stats");
    assert_same_simulation(&plain, &obs, "sharded observed-vs-not");
}

/// The stats report itself — sketch tables *and* the f64 series rows — must
/// be byte-identical at every thread count: per-shard books merge with
/// element-wise integer adds, and each series site column has exactly one
/// writer, summed in site-index order.
#[test]
fn stats_report_is_identical_at_any_thread_count() {
    let mut cfg = ScenarioConfig::baseline(120, 7);
    cfg.sites[0].batch_nodes = 64;
    let scenario = cfg.build();
    let serial = scenario.run_with(23, &observed(0));
    let want = serial.stats.as_ref().expect("serial stats");
    assert!(want.spans.spans > 0 && !want.series.rows.is_empty());
    for threads in [2, 3, 4, 8] {
        let sharded = scenario.run_with(23, &observed(threads));
        let got = sharded.stats.as_ref().expect("sharded stats");
        assert_eq!(want, got, "stats diverged at threads={threads}");
        assert_same_simulation(&serial, &sharded, &format!("threads={threads}"));
    }
}

/// Faults exercise the kill → requeue span path, whose sharded phase-start
/// bookkeeping (`killed_at` riding `Event::Requeue`) must agree with the
/// serial tracker exactly.
#[test]
fn stats_report_survives_faults_at_any_thread_count() {
    let mut cfg = ScenarioConfig::baseline(120, 6);
    for s in &mut cfg.sites {
        s.batch_nodes = (s.batch_nodes / 4).max(16);
    }
    cfg.faults = Some(tg_core::FaultSpec {
        site_outages: vec![tg_core::OutageWindow {
            site: 1,
            start_hours: 30.0,
            duration_hours: 12.0,
            notice_hours: 0.0,
        }],
        retry: Some(tg_sched::RetryPolicy::default()),
        ..tg_core::FaultSpec::default()
    });
    let scenario = cfg.build();
    let serial = scenario.run_with(4242, &observed(0));
    let fr = serial.fault_report.as_ref().expect("faults ran");
    assert!(fr.jobs_killed > 0, "outage killed running work: {fr:?}");
    let want = serial.stats.as_ref().expect("serial stats");
    assert!(
        want.spans.by_kind.contains_key("requeue"),
        "kill path produced requeue spans: {:?}",
        want.spans.by_kind.keys().collect::<Vec<_>>()
    );
    for threads in [2, 4] {
        let sharded = scenario.run_with(4242, &observed(threads));
        assert_eq!(
            want,
            sharded.stats.as_ref().expect("sharded stats"),
            "stats diverged at threads={threads}"
        );
    }
}

/// Acceptance cross-check: run once with both the JSONL trace and the online
/// sketches, then compare the sketch tables against (a) the offline analyzer
/// (exact counts and means) and (b) exact nearest-rank quantiles over the
/// parsed span durations — everything within the sketch's documented
/// [`RELATIVE_ERROR`].
#[test]
fn online_sketches_agree_with_offline_analyzer() {
    let cfg = ScenarioConfig::baseline(150, 7);
    let path = scratch("agree");
    let opts = RunOptions {
        trace_path: Some(path.clone()),
        live_stats: true,
        ..RunOptions::default()
    };
    let out = cfg.build().run_with(777, &opts);
    let stats = out.stats.as_ref().expect("stats collected");

    let mut analyzer = TraceAnalyzer::new();
    let mut durations: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
    let file = std::fs::File::open(&path).expect("trace file exists");
    for line in std::io::BufReader::new(file).lines() {
        let line = line.expect("readable line");
        if let Some(span) = parse_span_line(&line) {
            durations
                .entry(span.kind.name().to_string())
                .or_default()
                .push(span.duration());
        }
        analyzer.add_line(&line);
    }
    let _ = std::fs::remove_file(&path);
    let analysis = analyzer.finish();

    // Same span stream, so group membership and counts match exactly.
    assert_eq!(
        analysis.span_lines, stats.spans.spans,
        "span count online vs trace"
    );
    assert_eq!(
        analysis.by_kind.keys().collect::<Vec<_>>(),
        stats.spans.by_kind.keys().collect::<Vec<_>>(),
        "span kinds"
    );
    assert_eq!(
        analysis.queued_by_cause.keys().collect::<Vec<_>>(),
        stats.spans.queued_by_cause.keys().collect::<Vec<_>>(),
        "wait causes"
    );
    let close = |got: f64, want: f64, what: &str| {
        let tol = want.abs() * RELATIVE_ERROR + 1e-6;
        assert!(
            (got - want).abs() <= tol,
            "{what}: online {got} vs offline {want} (tol {tol})"
        );
    };
    for (kind, offline) in &analysis.by_kind {
        let online = &stats.spans.by_kind[kind];
        assert_eq!(online.count, offline.count, "{kind}: count");
        // The analyzer's mean is exact; the sketch's is bin-midpoint based.
        close(online.mean, offline.mean, &format!("{kind}: mean"));
    }
    for (cause, offline) in &analysis.queued_by_cause {
        assert_eq!(
            stats.spans.queued_by_cause[cause].count, offline.count,
            "{cause}: count"
        );
    }
    for (site, offline) in &analysis.queued_by_site {
        assert_eq!(
            stats.spans.queued_by_site[site].count, offline.count,
            "site {site}: count"
        );
    }

    // Exact nearest-rank quantiles from the retained durations: the sketch
    // must land within its documented relative error. (The analyzer's own
    // quantiles are P² *estimates*, so the exact sort is the fair referee.)
    for (kind, vals) in &mut durations {
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let online = &stats.spans.by_kind[kind.as_str()];
        for (q, got) in [(0.50, online.p50), (0.95, online.p95), (0.99, online.p99)] {
            let rank = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
            let want = vals[rank - 1];
            let tol = want.abs() * RELATIVE_ERROR + 1e-6;
            assert!(
                (got - want).abs() <= tol,
                "{kind} p{:.0}: sketch {got} vs exact {want} (tol {tol}, n={})",
                q * 100.0,
                vals.len()
            );
        }
        close(online.min, vals[0], &format!("{kind}: min"));
        close(online.max, vals[vals.len() - 1], &format!("{kind}: max"));
    }

    // The windowed series agrees with the accounting database on totals.
    let digest = stats.series.digest();
    assert_eq!(
        digest.completed,
        out.db.jobs.len() as u64,
        "series completion count vs accounting db"
    );
    assert!(digest.buckets > 0 && digest.peak_active > 0);
    // Queued spans: one per completed job (requeues add more, baseline has
    // none), so the queued table covers every job.
    assert_eq!(
        stats.spans.by_kind[SpanKind::Queued.name()].count,
        out.db.jobs.len() as u64 + stats.spans.by_kind.get("requeue").map_or(0, |s| s.count),
        "queued span coverage"
    );
}

/// The JSONL live sink streams exactly the closed-bucket rows of the final
/// snapshot, in order, as parseable JSON.
#[test]
fn live_sink_rows_match_the_final_snapshot() {
    let cfg = ScenarioConfig::baseline(80, 5);
    let path = scratch("sink");
    let opts = RunOptions {
        live_stats_path: Some(path.clone()),
        ..RunOptions::default()
    };
    let out = cfg.build().run_with(5, &opts);
    let stats = out.stats.as_ref().expect("stats collected");
    assert_eq!(stats.live_sink_errors, 0, "sink writes failed");
    let file = std::fs::File::open(&path).expect("live-stats file exists");
    let rows: Vec<tg_des::SeriesRow> = std::io::BufReader::new(file)
        .lines()
        .map(|l| serde_json::from_str(&l.expect("readable")).expect("row parses"))
        .collect();
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        rows, stats.series.rows,
        "streamed rows vs final snapshot rows"
    );
    assert!(rows.len() > 24, "a 5-day run closes >24 hourly buckets");
}
