//! Sharded-vs-serial differential suite.
//!
//! The sharded engine's contract is *byte-identical* `SimOutput` for any
//! thread count (`crates/core/src/parallel.rs`). This suite enforces it by
//! running whole scenarios both ways — every scenario config shipped in
//! `configs/`, a thread-count sweep, property-tested random scenarios, and
//! targeted sync-layer cases (2-site ping-pong workflows, cross-shard fault
//! delivery) — and comparing every deterministic output field.

use tg_core::{FaultSpec, Governor, RunOptions, ScenarioConfig, SimOutput};

fn load_config(name: &str) -> ScenarioConfig {
    let path = format!("{}/../../configs/{name}.json", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

fn run_pair(cfg: &ScenarioConfig, seed: u64, threads: usize) -> (SimOutput, SimOutput) {
    let scenario = cfg.clone().build();
    let mut opts = RunOptions::with_metrics();
    let serial = scenario.run_with(seed, &opts);
    opts.threads = threads;
    let sharded = scenario.run_with(seed, &opts);
    (serial, sharded)
}

/// Every deterministic field of [`SimOutput`] must match. (The engine
/// profile is excluded — it carries wall-clock time by design.)
fn assert_identical(serial: &SimOutput, sharded: &SimOutput, label: &str) {
    assert_eq!(
        serial.events_delivered, sharded.events_delivered,
        "{label}: event counts diverge"
    );
    assert_eq!(serial.end, sharded.end, "{label}: end times diverge");
    assert_eq!(serial.db.jobs, sharded.db.jobs, "{label}: job records");
    assert_eq!(
        serial.db.transfers, sharded.db.transfers,
        "{label}: transfer records"
    );
    assert_eq!(
        serial.db.sessions, sharded.db.sessions,
        "{label}: session records"
    );
    assert_eq!(
        serial.db.gateway_attrs, sharded.db.gateway_attrs,
        "{label}: gateway attributes"
    );
    assert_eq!(
        serial.db.rc_placements, sharded.db.rc_placements,
        "{label}: rc placements"
    );
    assert_eq!(serial.samples, sharded.samples, "{label}: sample series");
    assert_eq!(
        serial.site_stats, sharded.site_stats,
        "{label}: site statistics"
    );
    assert_eq!(
        serial.fault_report, sharded.fault_report,
        "{label}: fault report"
    );
    match (&serial.metrics, &sharded.metrics) {
        (Some(a), Some(b)) => {
            assert_eq!(a.counters, b.counters, "{label}: metric counters");
            assert_eq!(a.gauges, b.gauges, "{label}: metric gauges");
            assert_eq!(a.series, b.series, "{label}: metric series");
        }
        (None, None) => {}
        _ => panic!("{label}: metrics presence diverges"),
    }
}

#[test]
fn baseline_config_is_identical_sharded() {
    let mut cfg = load_config("baseline-300u-14d");
    // Keep the sampler on so the Sample path (global probe reads) is hot.
    cfg.sample_interval = Some(tg_des::SimDuration::from_hours(12));
    let (serial, sharded) = run_pair(&cfg, 42, 4);
    assert!(serial.db.jobs.len() > 1000, "config produced real load");
    assert_identical(&serial, &sharded, "baseline-300u-14d");
}

#[test]
fn faulty_config_is_identical_sharded() {
    let mut cfg = load_config("faulty-300u-14d");
    cfg.sample_interval = Some(tg_des::SimDuration::from_hours(12));
    let (serial, sharded) = run_pair(&cfg, 42, 4);
    let fr = serial.fault_report.as_ref().expect("faults ran");
    assert!(fr.jobs_killed > 0, "kills actually happened: {fr:?}");
    assert_identical(&serial, &sharded, "faulty-300u-14d");
}

#[test]
fn faults_demo_spec_is_identical_sharded() {
    let spec: FaultSpec = serde_json::from_str(
        &std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../configs/faults-demo.json"
        ))
        .expect("fault spec exists"),
    )
    .expect("fault spec parses");
    let mut cfg = ScenarioConfig::baseline(60, 4);
    cfg.faults = Some(spec);
    let (serial, sharded) = run_pair(&cfg, 31337, 4);
    let fr = serial.fault_report.as_ref().expect("faults ran");
    assert!(fr.jobs_killed > 0 || fr.node_crashes > 0, "faults fired");
    assert_identical(&serial, &sharded, "faults-demo");
}

/// The big perf config. Expensive: run with `--ignored` (CI runs it in
/// release mode as part of the parallel smoke step).
#[test]
#[ignore = "large config; CI runs it in release via the parallel smoke step"]
fn large_config_is_identical_sharded() {
    let cfg = load_config("large-3000u-90d");
    let (serial, sharded) = run_pair(&cfg, 42, 4);
    assert_identical(&serial, &sharded, "large-3000u-90d");
}

#[test]
fn every_thread_count_is_identical() {
    let mut cfg = ScenarioConfig::baseline(80, 5);
    cfg.sites[0].batch_nodes = 64;
    cfg.sites[1].batch_nodes = 128;
    cfg.sites[2].batch_nodes = 32;
    let scenario = cfg.build();
    let serial = scenario.run_with(7, &RunOptions::default());
    // threads=2 → one shard worker (pure pipelining); 3/4 → two/three
    // shards; 8 → capped at one shard per site.
    for threads in [2, 3, 4, 8] {
        let sharded = scenario.run_with(7, &RunOptions::with_threads(threads));
        assert_identical(&serial, &sharded, &format!("threads={threads}"));
    }
}

/// Deadlock-freedom and ordering on a 2-site federation where workflow
/// chains ping-pong between the sites: every dependency release crosses the
/// coordinator, and site-pinned halves keep both shards active.
#[test]
fn two_site_ping_pong_is_identical_and_deadlock_free() {
    use tg_model::SiteConfig;
    let mut cfg = ScenarioConfig::baseline(70, 4);
    cfg.name = "ping-pong-2site".into();
    cfg.sites = vec![
        SiteConfig {
            batch_nodes: 48,
            ..SiteConfig::medium("left")
        },
        SiteConfig {
            batch_nodes: 64,
            rc_nodes: 16,
            rc_area_per_node: 8,
            ..SiteConfig::medium("right")
        },
    ];
    cfg.data_home = 0;
    cfg.workload.sites = 2;
    cfg.workload.rc_sites = vec![tg_model::SiteId(1)];
    // Lean hard on workflows so cross-shard dependency traffic dominates.
    let w = tg_core::Modality::Workflow.index();
    cfg.workload.mix.users_per_modality[w] += 25;
    let scenario = cfg.build();
    let serial = scenario.run_with(99, &RunOptions::default());
    for threads in [2, 3] {
        let sharded = scenario.run_with(99, &RunOptions::with_threads(threads));
        assert_identical(&serial, &sharded, &format!("ping-pong threads={threads}"));
    }
}

/// Cross-shard fault delivery: an outage on one shard's site kills jobs
/// whose requeues route through the coordinator (possibly onto the other
/// shard), while a WAN degradation replicates to every shard's network
/// copy. Order of kill → requeue → re-dispatch must survive sharding.
#[test]
fn cross_shard_fault_delivery_is_identical() {
    use tg_core::{DegradeWindow, OutageWindow};
    use tg_sched::RetryPolicy;
    let mut cfg = ScenarioConfig::baseline(120, 6);
    for s in &mut cfg.sites {
        s.batch_nodes = (s.batch_nodes / 4).max(16);
    }
    cfg.faults = Some(FaultSpec {
        node_crashes: Some(tg_core::NodeCrashSpec {
            mtbf_hours: 36.0,
            repair_hours: 4.0,
            cores_per_crash: 64,
            horizon_days: 6.0,
        }),
        site_outages: vec![
            OutageWindow {
                site: 1,
                start_hours: 30.0,
                duration_hours: 12.0,
                notice_hours: 0.0,
            },
            OutageWindow {
                site: 2,
                start_hours: 70.0,
                duration_hours: 8.0,
                notice_hours: 0.0,
            },
        ],
        wan_degradations: vec![DegradeWindow {
            site: 0,
            start_hours: 20.0,
            duration_hours: 30.0,
            bandwidth_factor: 3.0,
            latency_factor: 2.0,
        }],
        retry: Some(RetryPolicy::default()),
        ..FaultSpec::default()
    });
    let (serial, sharded) = run_pair(&cfg, 4242, 4);
    let fr = serial.fault_report.as_ref().expect("faults ran");
    assert!(fr.jobs_killed > 0, "outages killed running work: {fr:?}");
    assert!(
        fr.jobs_requeued > 0 || fr.checkpoint_restarts > 0,
        "kills led to requeues: {fr:?}"
    );
    assert_identical(&serial, &sharded, "cross-shard faults");
}

/// Property test: random small scenarios (sites, machine sizes, scheduler
/// kind, workload mix, faults) are byte-identical sharded at a random
/// thread count. A cheap LCG derives every choice from the case index so
/// failures reproduce exactly.
#[test]
fn random_scenarios_are_identical_sharded() {
    use tg_sched::SchedulerKind;
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for case in 0..6u64 {
        let users = 30 + (next() % 50) as usize;
        let days = 2 + next() % 3;
        let mut cfg = ScenarioConfig::baseline(users, days);
        cfg.name = format!("prop-{case}");
        cfg.scheduler = match next() % 4 {
            0 => SchedulerKind::Fcfs,
            1 => SchedulerKind::Easy,
            2 => SchedulerKind::Conservative,
            _ => SchedulerKind::FairshareEasy,
        };
        for s in &mut cfg.sites {
            s.batch_nodes = (16 + (next() % 96) as usize).max(16);
        }
        if next() % 2 == 0 {
            cfg.sample_interval = Some(tg_des::SimDuration::from_hours(6 + (next() % 18)));
        }
        if next() % 2 == 0 {
            cfg.faults = Some(FaultSpec {
                site_outages: vec![tg_fault::OutageWindow {
                    site: (next() % 3) as usize,
                    start_hours: 10.0 + (next() % 40) as f64,
                    duration_hours: 2.0 + (next() % 10) as f64,
                    notice_hours: (next() % 3) as f64,
                }],
                ..FaultSpec::default()
            });
        }
        let seed = next();
        let threads = 2 + (next() % 7) as usize;
        let scenario = cfg.clone().build();
        let serial = scenario.run_with(seed, &RunOptions::default());
        let sharded = scenario.run_with(seed, &RunOptions::with_threads(threads));
        assert_identical(
            &serial,
            &sharded,
            &format!("case {case} (users={users} days={days} threads={threads} seed={seed})"),
        );
    }
}

/// All four execution strategies agree byte-for-byte on one faulty,
/// sampled scenario: serial, the batched grant protocol (governor off so
/// the whole run stays sharded even on a 1-core host), the per-event
/// protocol (one sync round per emission candidate, PR 6 behaviour), and a
/// forced mid-run governor fold onto the serial tail.
#[test]
fn sync_protocol_modes_are_identical() {
    let mut cfg = ScenarioConfig::baseline(100, 5);
    cfg.name = "protocol-modes".into();
    cfg.sample_interval = Some(tg_des::SimDuration::from_hours(12));
    cfg.faults = Some(FaultSpec {
        site_outages: vec![tg_fault::OutageWindow {
            site: 1,
            start_hours: 24.0,
            duration_hours: 6.0,
            notice_hours: 0.0,
        }],
        ..FaultSpec::default()
    });
    let scenario = cfg.build();
    let serial = scenario.run_with(11, &RunOptions::with_metrics());

    // Batched protocol, full sharded run.
    let mut batched = RunOptions::with_metrics();
    batched.threads = 4;
    batched.governor = Governor::Off;
    let out = scenario.run_with(11, &batched);
    assert_identical(&serial, &out, "batched protocol");
    let sync = out
        .profile
        .sync
        .as_ref()
        .expect("sharded run profiles sync");
    assert!(!sync.governor_fired, "governor off never folds");
    assert_eq!(sync.serial_tail_events, 0, "no serial tail without a fold");
    assert!(
        sync.batched_candidates > 0,
        "watched candidates resolved inside batched grants: {sync:?}"
    );

    // Per-event protocol: every candidate parks for its own round.
    let mut per_event = RunOptions::with_metrics();
    per_event.threads = 4;
    per_event.governor = Governor::Off;
    per_event.per_event_sync = true;
    let out_pe = scenario.run_with(11, &per_event);
    assert_identical(&serial, &out_pe, "per-event protocol");
    let sync_pe = out_pe.profile.sync.as_ref().expect("sync profile");
    assert!(
        sync_pe.candidate_rounds > sync.candidate_rounds,
        "per-event pays candidate rounds batching avoids: \
         per-event {} vs batched {}",
        sync_pe.candidate_rounds,
        sync.candidate_rounds
    );

    // Forced fold: shards recalled at the first epoch boundary, remainder
    // of the run executes on the fused serial path.
    let mut forced = RunOptions::with_metrics();
    forced.threads = 4;
    forced.governor = Governor::Force;
    let out_gov = scenario.run_with(11, &forced);
    assert_identical(&serial, &out_gov, "governor fold");
    let sync_gov = out_gov.profile.sync.as_ref().expect("sync profile");
    assert!(sync_gov.governor_fired, "forced governor must fire");
    assert!(sync_gov.governor_at_events > 0, "fold point recorded");
    assert!(
        sync_gov.serial_tail_events > 0,
        "events actually ran on the fused tail: {sync_gov:?}"
    );
    assert_eq!(
        serial.events_delivered,
        sync_gov.governor_at_events + sync_gov.serial_tail_events,
        "every event is either pre-fold or on the serial tail"
    );
}

/// On a single-core host the Auto governor folds *before* the shard fleet
/// is built (`spin_budget() == 0` makes the tripwire a foregone
/// conclusion, and per-shard workload replicas are the dominant setup
/// cost). The whole run executes on the fused serial tail: zero sync
/// rounds, fold point at event zero, and byte-identical output. Gated on
/// host core count — on a multi-core machine Auto shards normally and the
/// pre-fold path is unreachable by design.
#[test]
fn governor_prefolds_on_single_core_hosts() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores != 1 {
        eprintln!("skipping: host has {cores} cores, pre-spawn fold needs 1");
        return;
    }
    let mut cfg = ScenarioConfig::baseline(80, 4);
    cfg.name = "prefold".into();
    cfg.sample_interval = Some(tg_des::SimDuration::from_hours(12));
    cfg.faults = Some(FaultSpec {
        site_outages: vec![tg_fault::OutageWindow {
            site: 1,
            start_hours: 20.0,
            duration_hours: 6.0,
            notice_hours: 0.0,
        }],
        ..FaultSpec::default()
    });
    let scenario = cfg.build();
    let serial = scenario.run_with(17, &RunOptions::with_metrics());
    let mut opts = RunOptions::with_metrics();
    opts.threads = 4; // Governor::Auto is the default
    let out = scenario.run_with(17, &opts);
    assert_identical(&serial, &out, "pre-spawn fold");
    let sync = out.profile.sync.as_ref().expect("sync profile");
    assert!(sync.governor_fired, "Auto folds on a 1-core host");
    assert_eq!(sync.governor_at_events, 0, "fold happens before any event");
    assert_eq!(sync.rounds, 0, "no shard ever spawned, no sync rounds");
    assert_eq!(
        sync.serial_tail_events, out.events_delivered,
        "every event runs on the fused tail"
    );
}

/// Property test across protocol modes: random scenarios are byte-identical
/// run serial, batched-sharded, and per-event-sharded (both with the
/// governor off so the protocols run to completion regardless of host core
/// count). Same LCG scheme as `random_scenarios_are_identical_sharded`.
#[test]
fn random_scenarios_identical_across_protocols() {
    let mut state = 0x2545f4914f6cdd1du64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for case in 0..4u64 {
        let users = 30 + (next() % 40) as usize;
        let days = 2 + next() % 3;
        let mut cfg = ScenarioConfig::baseline(users, days);
        cfg.name = format!("proto-prop-{case}");
        for s in &mut cfg.sites {
            s.batch_nodes = (16 + (next() % 64) as usize).max(16);
        }
        if next() % 2 == 0 {
            cfg.faults = Some(FaultSpec {
                site_outages: vec![tg_fault::OutageWindow {
                    site: (next() % 3) as usize,
                    start_hours: 8.0 + (next() % 30) as f64,
                    duration_hours: 2.0 + (next() % 8) as f64,
                    notice_hours: 0.0,
                }],
                ..FaultSpec::default()
            });
        }
        let seed = next();
        let threads = 2 + (next() % 7) as usize;
        let scenario = cfg.build();
        let serial = scenario.run_with(seed, &RunOptions::default());
        let label = format!("proto case {case} (users={users} threads={threads} seed={seed})");
        let mut opts = RunOptions::with_threads(threads);
        opts.governor = Governor::Off;
        let batched = scenario.run_with(seed, &opts);
        assert_identical(&serial, &batched, &format!("{label} batched"));
        opts.per_event_sync = true;
        let per_event = scenario.run_with(seed, &opts);
        assert_identical(&serial, &per_event, &format!("{label} per-event"));
    }
}

/// Pins the batched-grant contract: with no fault candidates in play, a
/// same-shard run of watched events costs *zero* dedicated candidate
/// rounds — each run rides exactly the one grant round that admitted it,
/// with every watched completion resolved by a prefetched-bound ack. The
/// per-event protocol on the identical scenario pays one parked round per
/// candidate, which is what the batching removed.
#[test]
fn same_shard_run_costs_one_grant_round() {
    let mut cfg = ScenarioConfig::baseline(80, 4);
    cfg.name = "batched-runs".into();
    let scenario = cfg.build();
    let mk = |per_event: bool| {
        let mut opts = RunOptions::with_metrics();
        opts.threads = 2; // single shard: every run is same-shard
        opts.governor = Governor::Off;
        opts.per_event_sync = per_event;
        opts
    };
    let batched = scenario.run_with(5, &mk(false));
    let sync = batched.profile.sync.as_ref().expect("sync profile");
    assert_eq!(sync.shards, 1);
    // The pin: no faults → no fault candidates → not a single dedicated
    // candidate round. Every watched event resolved inside a grant.
    assert_eq!(
        sync.candidate_rounds, 0,
        "a same-shard run must not park per event: {sync:?}"
    );
    assert!(sync.batched_candidates > 0, "runs carried watched events");
    assert!(
        sync.grant_rounds < batched.events_delivered,
        "grants cover multi-event runs: {} grant rounds for {} events",
        sync.grant_rounds,
        batched.events_delivered
    );
    let per_event = scenario.run_with(5, &mk(true));
    assert_identical(&batched, &per_event, "batched vs per-event");
    let sync_pe = per_event.profile.sync.as_ref().expect("sync profile");
    assert!(
        sync_pe.candidate_rounds > 0 && sync_pe.rounds > sync.rounds,
        "per-event pays the rounds batching removed: {} vs {}",
        sync_pe.rounds,
        sync.rounds
    );
}

/// `--threads 1` must be the serial path exactly: same outputs, and the
/// sharded machinery never engages (tracing keeps working, which the
/// sharded path would refuse).
#[test]
fn threads_one_is_the_serial_path() {
    let cfg = ScenarioConfig::baseline(40, 3);
    let scenario = cfg.build();
    let a = scenario.run_with(3, &RunOptions::default());
    let b = scenario.run_with(3, &RunOptions::with_threads(1));
    assert_identical(&a, &b, "threads=1");
}
