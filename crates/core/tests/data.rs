//! Data-grid differential suite.
//!
//! The tg-data layer (datasets, replica catalog, per-site LRU caches, WAN
//! fetch events) must be *inert by construction* when no datasets are
//! configured — byte-identical to a build without the crate — and fully
//! deterministic when they are: the same bytes at any `--threads N` and
//! under streaming generation, because the catalog and caches are only ever
//! touched from the coordinator-side routing path. This suite enforces
//! both, checks the locality-aware metascheduler actually wins on WAN bytes
//! moved, and property-tests conservation invariants over random catalogs.

use std::collections::BTreeMap;

use proptest::prelude::*;
use tg_core::{RunOptions, ScenarioConfig, SimOutput};
use tg_data::{DataGridSpec, DatasetSpec};
use tg_sched::MetaPolicy;

/// A small federation with site caches and a skewed dataset catalog: three
/// datasets pinned at distinct sites, Zipf-popular, attached to the job-like
/// modalities. Sites are shrunk so queues (and therefore non-trivial routing
/// choices) actually form.
fn datagrid(users: usize, days: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::baseline(users, days);
    cfg.name = format!("datagrid-{users}u-{days}d");
    cfg.sites[0].batch_nodes = 64;
    cfg.sites[1].batch_nodes = 128;
    cfg.sites[2].batch_nodes = 32;
    for s in &mut cfg.sites {
        s.data_cache_mb = 4_000.0;
    }
    cfg.data = Some(DataGridSpec {
        datasets: vec![
            DatasetSpec {
                name: "survey-hot".into(),
                size_mb: 1_800.0,
                replicas: vec![0],
            },
            DatasetSpec {
                name: "reference-genome".into(),
                size_mb: 2_500.0,
                replicas: vec![1],
            },
            DatasetSpec {
                name: "climate-archive".into(),
                size_mb: 3_200.0,
                replicas: vec![2],
            },
            DatasetSpec {
                name: "cold-tape".into(),
                size_mb: 900.0,
                replicas: vec![0, 1],
            },
        ],
        zipf_s: 0.9,
        attach: [
            ("batch".to_string(), 0.6),
            ("ensemble".to_string(), 0.5),
            ("workflow".to_string(), 0.4),
        ]
        .into_iter()
        .collect(),
    });
    cfg
}

/// Every deterministic field of [`SimOutput`] must match.
fn assert_same_simulation(a: &SimOutput, b: &SimOutput, label: &str) {
    assert_eq!(a.events_delivered, b.events_delivered, "{label}: events");
    assert_eq!(a.end, b.end, "{label}: end time");
    assert_eq!(a.db.jobs, b.db.jobs, "{label}: job records");
    assert_eq!(a.db.transfers, b.db.transfers, "{label}: transfers");
    assert_eq!(a.db.sessions, b.db.sessions, "{label}: sessions");
    assert_eq!(a.db.rc_placements, b.db.rc_placements, "{label}: rc");
    assert_eq!(a.samples, b.samples, "{label}: sample series");
    assert_eq!(a.site_stats, b.site_stats, "{label}: site stats");
    assert_eq!(a.fault_report, b.fault_report, "{label}: fault report");
    assert_eq!(a.data_report, b.data_report, "{label}: data report");
}

/// A scenario with no `data` spec and one with a *trivial* spec (a catalog
/// nobody ever attaches) must produce byte-identical output: the trivial
/// spec may not construct the layer, draw RNG, or schedule a single event.
#[test]
fn trivial_data_spec_is_byte_identical_to_none() {
    let plain = ScenarioConfig::baseline(120, 7);
    let mut trivial = ScenarioConfig::baseline(120, 7);
    trivial.data = Some(DataGridSpec {
        datasets: vec![DatasetSpec {
            name: "unused".into(),
            size_mb: 500.0,
            replicas: vec![0],
        }],
        zipf_s: 1.0,
        attach: BTreeMap::new(),
    });
    let a = plain.build().run_with(11, &RunOptions::default());
    let b = trivial.build().run_with(11, &RunOptions::default());
    assert!(a.data_report.is_none(), "no spec must mean no report");
    assert!(b.data_report.is_none(), "trivial spec must mean no report");
    assert_same_simulation(&a, &b, "trivial-vs-none");
}

/// The datasets run itself: sharded execution at several thread counts must
/// reproduce the serial bytes exactly, including the data report — the
/// catalog and caches live on the coordinator, so shard count can never
/// reorder accesses.
#[test]
fn datasets_run_is_identical_at_any_thread_count() {
    let scenario = datagrid(120, 7).build();
    let serial = scenario.run_with(23, &RunOptions::default());
    let report = serial.data_report.as_ref().expect("data grid ran");
    assert!(report.accesses > 0, "no dataset accesses: {report:?}");
    assert!(
        report.hits > 0 && report.misses > 0,
        "want a mix: {report:?}"
    );
    for threads in [2, 4] {
        let sharded = scenario.run_with(23, &RunOptions::with_threads(threads));
        assert_same_simulation(&serial, &sharded, &format!("threads={threads}"));
    }
}

/// Streaming generation must not perturb a datasets run: the dataset draw
/// rides the shared per-user generator, so materialized and streamed
/// workloads see identical assignment sequences.
#[test]
fn streaming_generation_matches_materialized_with_datasets() {
    let scenario = datagrid(120, 7).build();
    let materialized = scenario.run_with(31, &RunOptions::default());
    let streamed = scenario.run_with(
        31,
        &RunOptions {
            stream_gen: true,
            ..RunOptions::default()
        },
    );
    assert_same_simulation(&materialized, &streamed, "stream-vs-materialized");
    let sharded_streamed = scenario.run_with(
        31,
        &RunOptions {
            stream_gen: true,
            ..RunOptions::with_threads(4)
        },
    );
    assert_same_simulation(&materialized, &sharded_streamed, "stream+threads=4");
}

/// The live-stats sketches must agree with the data report on hit/miss
/// counts: every routed dataset job closes exactly one stage-in span tagged
/// with its cache outcome.
#[test]
fn stage_in_spans_account_for_every_dataset_access() {
    let out = datagrid(120, 7).build().run_with(
        23,
        &RunOptions {
            live_stats: true,
            ..RunOptions::default()
        },
    );
    let report = out.data_report.as_ref().expect("data grid ran");
    let spans = &out.stats.as_ref().expect("live stats").spans;
    let count = |cause: &str| spans.stage_in_by_cause.get(cause).map_or(0, |s| s.count);
    assert_eq!(count("cache-hit"), report.hits, "hit spans vs report");
    assert_eq!(count("cache-miss"), report.misses, "miss spans vs report");
}

/// The point of the subsystem: a replica-catalog-aware metascheduler moves
/// fewer bytes over the WAN than a locality-blind one on the same workload,
/// and lands a higher cache-hit rate.
#[test]
fn locality_aware_routing_beats_locality_blind() {
    let mut blind_cfg = datagrid(150, 10);
    blind_cfg.meta = MetaPolicy::ShortestEta;
    let mut aware_cfg = datagrid(150, 10);
    aware_cfg.meta = MetaPolicy::DataLocality;
    let blind = blind_cfg.build().run_with(7, &RunOptions::default());
    let aware = aware_cfg.build().run_with(7, &RunOptions::default());
    let b = blind.data_report.as_ref().expect("blind report");
    let a = aware.data_report.as_ref().expect("aware report");
    assert!(
        a.wan_mb < b.wan_mb,
        "locality-aware moved {} MB over the WAN, blind moved {}",
        a.wan_mb,
        b.wan_mb
    );
    assert!(
        a.hit_rate > b.hit_rate,
        "locality-aware hit rate {} vs blind {}",
        a.hit_rate,
        b.hit_rate
    );
}

/// Conservation and determinism over random catalogs: for any valid spec,
/// hits + misses == accesses, the per-site breakdown sums to the totals,
/// WAN bytes are a whole number of dataset fetches, and a 2-thread run
/// reproduces the serial bytes.
fn catalog_strategy() -> impl Strategy<Value = DataGridSpec> {
    // Replica placement as a non-empty bitmask over the three sites.
    let dataset = (100.0f64..3_000.0, 1u8..8).prop_map(|(size_mb, mask)| DatasetSpec {
        name: format!("d{mask}-{}", size_mb as u64),
        size_mb,
        replicas: (0..3).filter(|i| mask & (1 << i) != 0).collect(),
    });
    (
        proptest::collection::vec(dataset, 1..5),
        0.0f64..1.5,
        0.1f64..0.9,
        0.0f64..0.9,
    )
        .prop_map(|(datasets, zipf_s, p_batch, p_ens)| DataGridSpec {
            datasets,
            zipf_s,
            attach: [
                ("batch".to_string(), p_batch),
                ("ensemble".to_string(), p_ens),
            ]
            .into_iter()
            .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn random_catalogs_conserve_and_stay_deterministic(
        spec in catalog_strategy(),
        seed in 0u64..1_000,
        cache_mb in 0.0f64..6_000.0,
    ) {
        let mut cfg = datagrid(40, 3);
        for s in &mut cfg.sites {
            s.data_cache_mb = cache_mb;
        }
        prop_assert!(spec.validate(cfg.sites.len()).is_ok());
        cfg.data = Some(spec.clone());
        let scenario = cfg.build();
        let serial = scenario.run_with(seed, &RunOptions::default());
        let report = serial.data_report.as_ref().expect("non-trivial spec");
        prop_assert_eq!(report.hits + report.misses, report.accesses);
        prop_assert_eq!(report.datasets, spec.datasets.len());
        let site_hits: u64 = report.per_site.iter().map(|s| s.hits).sum();
        let site_misses: u64 = report.per_site.iter().map(|s| s.misses).sum();
        let site_evictions: u64 = report.per_site.iter().map(|s| s.evictions).sum();
        let site_wan: f64 = report.per_site.iter().map(|s| s.wan_in_mb).sum();
        prop_assert_eq!(site_hits, report.hits);
        prop_assert_eq!(site_misses, report.misses);
        prop_assert_eq!(site_evictions, report.evictions);
        prop_assert!((site_wan - report.wan_mb).abs() < 1e-6);
        // Every WAN megabyte is a whole dataset fetched end-to-end: misses
        // bound the total by the smallest and largest catalog entries.
        let min = spec.datasets.iter().map(|d| d.size_mb).fold(f64::MAX, f64::min);
        let max = spec.datasets.iter().map(|d| d.size_mb).fold(0.0, f64::max);
        prop_assert!(report.wan_mb >= report.misses as f64 * min - 1e-6);
        prop_assert!(report.wan_mb <= report.misses as f64 * max + 1e-6);
        let sharded = scenario.run_with(seed, &RunOptions::with_threads(2));
        prop_assert_eq!(&serial.db.jobs, &sharded.db.jobs);
        prop_assert_eq!(&serial.db.transfers, &sharded.db.transfers);
        prop_assert_eq!(serial.end, sharded.end);
        prop_assert_eq!(&serial.data_report, &sharded.data_report);
    }
}
