//! Streaming-vs-materialized differential suite.
//!
//! The streaming run path's contract is *byte-identical* `SimOutput` to the
//! materialized serial path at the same seed (`crates/core/src/scenario.rs`,
//! `RunOptions::stream_gen`). This suite enforces it on every scenario
//! config shipped in `configs/`, on fault-injected and sampled runs, and
//! checks the record-sink diversion: a sink run's tally must agree exactly
//! with the retained run's database counts.

use tg_core::{RecordStreaming, RunOptions, Scenario, ScenarioConfig, SimOutput};

fn load_config(name: &str) -> ScenarioConfig {
    let path = format!("{}/../../configs/{name}.json", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

fn run_pair(cfg: &ScenarioConfig, seed: u64) -> (SimOutput, SimOutput) {
    let scenario = cfg.clone().build();
    let mut opts = RunOptions::with_metrics();
    let materialized = scenario.run_with(seed, &opts);
    opts.stream_gen = true;
    let streamed = scenario.run_with(seed, &opts);
    (materialized, streamed)
}

/// Every deterministic field of [`SimOutput`] must match. (The engine
/// profile is excluded — it carries wall-clock time by design.)
fn assert_identical(mat: &SimOutput, streamed: &SimOutput, label: &str) {
    assert_eq!(
        mat.events_delivered, streamed.events_delivered,
        "{label}: event counts diverge"
    );
    assert_eq!(mat.end, streamed.end, "{label}: end times diverge");
    assert_eq!(mat.db.jobs, streamed.db.jobs, "{label}: job records");
    assert_eq!(
        mat.db.transfers, streamed.db.transfers,
        "{label}: transfer records"
    );
    assert_eq!(
        mat.db.sessions, streamed.db.sessions,
        "{label}: session records"
    );
    assert_eq!(
        mat.db.gateway_attrs, streamed.db.gateway_attrs,
        "{label}: gateway attributes"
    );
    assert_eq!(
        mat.db.rc_placements, streamed.db.rc_placements,
        "{label}: rc placements"
    );
    assert_eq!(mat.truth, streamed.truth, "{label}: ground truth");
    assert_eq!(
        mat.population.users, streamed.population.users,
        "{label}: populations"
    );
    assert_eq!(mat.samples, streamed.samples, "{label}: sample series");
    assert_eq!(mat.site_stats, streamed.site_stats, "{label}: site stats");
    assert_eq!(
        mat.fault_report, streamed.fault_report,
        "{label}: fault report"
    );
    match (&mat.metrics, &streamed.metrics) {
        (Some(a), Some(b)) => {
            assert_eq!(a.counters, b.counters, "{label}: metric counters");
            assert_eq!(a.gauges, b.gauges, "{label}: metric gauges");
            assert_eq!(a.series, b.series, "{label}: metric series");
        }
        (None, None) => {}
        _ => panic!("{label}: metrics presence diverges"),
    }
}

#[test]
fn baseline_config_is_identical_streamed() {
    let mut cfg = load_config("baseline-300u-14d");
    // Keep the sampler on so Sample events interleave with the stream.
    cfg.sample_interval = Some(tg_des::SimDuration::from_hours(12));
    let (mat, streamed) = run_pair(&cfg, 42);
    assert!(mat.db.jobs.len() > 1000, "config produced real load");
    assert_identical(&mat, &streamed, "baseline-300u-14d");
}

#[test]
fn faulty_config_is_identical_streamed() {
    let mut cfg = load_config("faulty-300u-14d");
    cfg.sample_interval = Some(tg_des::SimDuration::from_hours(12));
    let (mat, streamed) = run_pair(&cfg, 42);
    let fr = mat.fault_report.as_ref().expect("faults ran");
    assert!(fr.jobs_killed > 0, "kills actually happened: {fr:?}");
    assert_identical(&mat, &streamed, "faulty-300u-14d");
}

/// The big perf config. Expensive in debug: CI runs it in release as part
/// of the streaming memory-budget smoke step.
#[test]
#[ignore = "large config; CI runs it in release via the streaming smoke step"]
fn large_config_is_identical_streamed() {
    let cfg = load_config("large-3000u-90d");
    let (mat, streamed) = run_pair(&cfg, 42);
    assert_identical(&mat, &streamed, "large-3000u-90d");
}

#[test]
fn several_seeds_are_identical_streamed() {
    let mut cfg = ScenarioConfig::baseline(80, 5);
    cfg.sites[0].batch_nodes = 64;
    cfg.sites[1].batch_nodes = 128;
    cfg.sites[2].batch_nodes = 32;
    for seed in [1u64, 7, 31337] {
        let (mat, streamed) = run_pair(&cfg, seed);
        assert_identical(&mat, &streamed, &format!("seed={seed}"));
    }
}

/// `--threads N` with streaming falls back to the serial streaming path
/// (with a warning) — outputs still identical.
#[test]
fn streaming_ignores_thread_count() {
    let cfg = ScenarioConfig::baseline(60, 4);
    let scenario = cfg.build();
    let serial = scenario.run_with(5, &RunOptions::default());
    let opts = RunOptions {
        stream_gen: true,
        threads: 4,
        ..RunOptions::default()
    };
    let streamed = scenario.run_with(5, &opts);
    assert_identical(&serial, &streamed, "threads=4 fallback");
}

/// Record-sink diversion: the tally must agree exactly with what a retained
/// run stores, the database must come back empty, and everything that is
/// not a record (site stats, truth, samples, end time) must be untouched.
#[test]
fn record_sink_tally_matches_retained_database() {
    let cfg = ScenarioConfig::baseline(80, 5);
    let scenario = cfg.build();
    let retained = scenario.run_with(9, &RunOptions::default());
    let opts = RunOptions {
        stream_gen: true,
        record_streaming: RecordStreaming::Discard,
        ..RunOptions::default()
    };
    let diverted = scenario.run_with(9, &opts);

    assert!(diverted.db.jobs.is_empty(), "records left the database");
    let tally = diverted.ingest_tally.expect("sink attached");
    assert_eq!(tally.jobs, retained.db.jobs.len() as u64);
    assert_eq!(tally.transfers, retained.db.transfers.len() as u64);
    assert_eq!(tally.sessions, retained.db.sessions.len() as u64);
    assert_eq!(tally.gateway_attrs, retained.db.gateway_attrs.len() as u64);
    assert_eq!(tally.rc_placements, retained.db.rc_placements.len() as u64);
    assert_eq!(tally.write_errors, 0);
    let retained_core_hours: f64 = retained.db.jobs.iter().map(|j| j.core_hours()).sum();
    assert!((tally.core_hours - retained_core_hours).abs() < 1e-6);

    // The simulation behind the sink is the same simulation.
    assert_eq!(retained.end, diverted.end);
    assert_eq!(retained.events_delivered, diverted.events_delivered);
    assert_eq!(retained.truth, diverted.truth);
    assert_eq!(retained.site_stats, diverted.site_stats);
    assert!(
        retained.ingest_tally.is_none(),
        "retained runs carry no tally"
    );
}

/// JSONL sink: the file holds one line per record, kinds tallied correctly.
#[test]
fn jsonl_record_sink_writes_complete_file() {
    let cfg = ScenarioConfig::baseline(40, 3);
    let scenario: Scenario = cfg.build();
    let dir = std::env::temp_dir().join("tg-streaming-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("records-jsonl-sink.jsonl");
    let opts = RunOptions {
        stream_gen: true,
        record_streaming: RecordStreaming::Jsonl(path.clone()),
        ..RunOptions::default()
    };
    let out = scenario.run_with(4, &opts);
    let tally = out.ingest_tally.expect("sink attached");
    assert_eq!(tally.write_errors, 0);
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(text.lines().count() as u64, tally.len());
    let mut jobs = 0u64;
    for line in text.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON line");
        let kind = v.get("kind").and_then(|k| k.as_str()).expect("kind tag");
        if kind == "job" {
            jobs += 1;
        }
        assert!(v.get("rec").is_some(), "record body present");
    }
    assert_eq!(jobs, tally.jobs);
    std::fs::remove_file(&path).ok();
}
