//! Criterion microbenches for the hot paths of the simulator stack:
//! event-queue throughput, scheduler decision rounds, RC placement
//! planning, distribution sampling, workload generation, and classifier
//! throughput.
//!
//! Run with `cargo bench -p tg-bench`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tg_core::{classify_all, ClassifierMode, ScenarioConfig};
use tg_des::dist::{Dist, Exponential, LogNormal, Zipf};
use tg_des::{Ctx, Engine, RngFactory, SimDuration, SimRng, SimTime, Simulation};
use tg_model::config::ConfigLibrary;
use tg_model::reconf::RcPartition;
use tg_model::Cluster;
use tg_sched::{RcPolicy, SchedulerKind};
use tg_workload::{
    GeneratorConfig, Job, JobId, ProjectId, RcRequirement, UserId, WorkloadGenerator,
};

/// Event-queue throughput: N timer events that each reschedule themselves
/// once — the engine's pop/push hot loop.
fn bench_event_queue(c: &mut Criterion) {
    struct Relay {
        remaining: u64,
    }
    impl Simulation for Relay {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Ctx<u32>, ev: u32) {
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.schedule_after(SimDuration::from_millis(ev as u64 % 97 + 1), ev);
            }
        }
    }
    let mut group = c.benchmark_group("event_queue");
    for &n in &[1_000u64, 10_000, 100_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("relay", n), &n, |b, &n| {
            b.iter(|| {
                let mut engine: Engine<u32> = Engine::with_capacity(64);
                for i in 0..64u32 {
                    engine.schedule_at(SimTime::from_micros(i as u64), i);
                }
                let mut sim = Relay { remaining: n };
                engine.run(&mut sim);
                black_box(engine.now())
            });
        });
    }
    group.finish();
}

/// One scheduler decision round with a 100-deep queue on a busy machine.
fn bench_scheduler_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_round");
    for kind in [
        SchedulerKind::Fcfs,
        SchedulerKind::Easy,
        SchedulerKind::Conservative,
    ] {
        group.bench_function(kind.name(), |b| {
            b.iter_with_setup(
                || {
                    let mut sched = kind.build(1024);
                    let mut cluster = Cluster::new(SimTime::ZERO, 1024);
                    // A wide running job blocks the head; 100 queued jobs.
                    sched.submit(
                        SimTime::ZERO,
                        Job::batch(
                            JobId(0),
                            UserId(0),
                            ProjectId(0),
                            SimTime::ZERO,
                            1000,
                            SimDuration::from_hours(10),
                        ),
                    );
                    sched.make_decisions(SimTime::ZERO, &mut cluster, 1.0);
                    for i in 1..=100 {
                        let cores = 1 + (i * 37) % 512;
                        sched.submit(
                            SimTime::ZERO,
                            Job::batch(
                                JobId(i),
                                UserId(i),
                                ProjectId(0),
                                SimTime::ZERO,
                                cores,
                                SimDuration::from_mins(10 + (i as u64 * 13) % 600),
                            ),
                        );
                    }
                    (sched, cluster)
                },
                |(mut sched, mut cluster)| {
                    let started = sched.make_decisions(SimTime::from_secs(1), &mut cluster, 1.0);
                    black_box(started.len())
                },
            );
        });
    }
    group.finish();
}

/// RC placement planning across a 64-node partition.
fn bench_rc_planning(c: &mut Criterion) {
    let library = ConfigLibrary::synthetic(16);
    let mut partition = RcPartition::new(SimTime::ZERO, 64, 8, 8);
    // Warm the fabric with a realistic mixed state.
    let mut rng = SimRng::seeded(7);
    for i in 0..96 {
        let config = tg_model::ConfigId(rng.below(16) as usize);
        let node = tg_model::NodeId((i * 7) % 64);
        let plan = partition.node(node).plan(config, &library);
        if !matches!(plan, tg_model::reconf::HostPlan::Infeasible) {
            let rid = partition.node_mut(node).commit(
                plan,
                config,
                &library,
                SimTime::from_secs(i as u64),
            );
            if i % 2 == 0 {
                partition
                    .node_mut(node)
                    .finish(rid, SimTime::from_secs(i as u64 + 10));
            }
        }
    }
    let job = Job::batch(
        JobId(0),
        UserId(0),
        ProjectId(0),
        SimTime::ZERO,
        1,
        SimDuration::from_mins(20),
    )
    .with_rc(RcRequirement {
        config: tg_model::ConfigId(3),
        speedup: 12.0,
        deadline: None,
    });
    let mut group = c.benchmark_group("rc_planning");
    for policy in [RcPolicy::AWARE, RcPolicy::BLIND] {
        group.bench_function(policy.name(), |b| {
            b.iter(|| {
                black_box(policy.decide(
                    black_box(&job),
                    &partition,
                    &library,
                    |_c| SimDuration::from_millis(200),
                    SimTime::from_secs(1_000),
                    1.0,
                ))
            });
        });
    }
    group.finish();
}

/// Distribution sampling hot loop.
fn bench_distributions(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributions");
    group.throughput(Throughput::Elements(1));
    let expo = Exponential::with_mean(10.0);
    let logn = LogNormal::from_mean_cv(3600.0, 1.5);
    let zipf = Zipf::new(10_000, 1.1);
    let mut rng = SimRng::seeded(42);
    group.bench_function("exponential", |b| {
        b.iter(|| black_box(expo.sample(&mut rng)))
    });
    group.bench_function("lognormal", |b| b.iter(|| black_box(logn.sample(&mut rng))));
    group.bench_function("zipf_10k", |b| {
        b.iter(|| black_box(zipf.sample_rank(&mut rng)))
    });
    group.finish();
}

/// Whole-workload generation throughput (jobs/second generated).
fn bench_workload_generation(c: &mut Criterion) {
    let cfg = GeneratorConfig::baseline(200, 14, 3);
    let gen = WorkloadGenerator::new(cfg);
    let factory = RngFactory::new(5);
    let jobs = gen.generate(&factory).jobs.len() as u64;
    let mut group = c.benchmark_group("workload_generation");
    group.throughput(Throughput::Elements(jobs));
    group.sample_size(10);
    group.bench_function("baseline_200u_14d", |b| {
        b.iter(|| black_box(gen.generate(&factory).jobs.len()));
    });
    group.finish();
}

/// Classifier throughput over a real accounting database.
fn bench_classifier(c: &mut Criterion) {
    let mut cfg = ScenarioConfig::baseline(150, 7);
    cfg.sites[0].batch_nodes = 64;
    cfg.sites[1].batch_nodes = 128;
    cfg.sites[2].batch_nodes = 48;
    let out = cfg.build().run(1);
    let jobs = out.db.jobs.len() as u64;
    let mut group = c.benchmark_group("classifier");
    group.throughput(Throughput::Elements(jobs));
    group.sample_size(20);
    for mode in [ClassifierMode::WithAttributes, ClassifierMode::RecordsOnly] {
        group.bench_function(mode.name(), |b| {
            b.iter(|| black_box(classify_all(&out.db, mode).len()));
        });
    }
    group.finish();
}

/// A small end-to-end scenario per iteration — the macro number.
fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("scenario_80u_3d", |b| {
        b.iter(|| {
            let mut cfg = ScenarioConfig::baseline(80, 3);
            cfg.sites[0].batch_nodes = 64;
            cfg.sites[1].batch_nodes = 64;
            cfg.sites[2].batch_nodes = 32;
            let out = cfg.build().run(9);
            black_box(out.db.jobs.len())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_scheduler_round,
    bench_rc_planning,
    bench_distributions,
    bench_workload_generation,
    bench_classifier,
    bench_end_to_end,
);
criterion_main!(benches);
