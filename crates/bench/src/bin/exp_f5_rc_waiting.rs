//! F5 — Average RC-task waiting time vs number of reconfigurable nodes,
//! RC-aware vs RC-blind scheduling.
//!
//! "Waiting" for an RC task is everything between submission and execution
//! start: deferral while the fabric is full plus the setup pipeline
//! (bitstream fetch over the WAN + 15 s fabric reconfiguration). The
//! offered load is fixed — sized to ~70% of a 16-node partition — so small
//! partitions are overloaded and large ones are slack.
//!
//! Expected shape: waits fall steeply with partition size for both
//! policies; RC-aware sits below RC-blind at every size because reuse
//! skips the setup pipeline, and the absolute gap shrinks as the partition
//! grows slack.

use serde::Serialize;
use tg_bench::{
    rc_only_config, rc_tasks_per_day_for_load, save_json, synthetic_library, trace_scratch_path,
    wait_crosscheck, Table, WaitCrossCheck,
};
use tg_core::{replicate_with, RunOptions};
use tg_des::SimDuration;
use tg_sched::RcPolicy;

#[derive(Serialize)]
struct F5Point {
    nodes: usize,
    policy: String,
    mean_wait_s: f64,
    ci: f64,
    mean_turnaround_s: f64,
    reuse_fraction: f64,
    hw_fraction: f64,
    /// Span-analyzer reconstruction of replication 0's mean wait from its
    /// JSONL trace, vs the accounting database.
    trace_crosscheck: WaitCrossCheck,
}

fn main() {
    let days = 2;
    let tasks_per_day = rc_tasks_per_day_for_load(16, 8, 0.7);
    let mut points = Vec::new();
    for nodes in [4, 8, 16, 32, 64] {
        for policy in [RcPolicy::AWARE, RcPolicy::BLIND] {
            let mut cfg = rc_only_config(nodes, 8, tasks_per_day, days, 12);
            cfg.rc_policy = policy;
            cfg.library = Some(synthetic_library(12, SimDuration::from_secs(15), 1.0));
            cfg.name = format!("f5-{nodes}n-{}", policy.name());
            let trace_path = trace_scratch_path(&format!("exp_f5_{nodes}n_{}", policy.name()));
            let opts = RunOptions {
                metrics: false,
                trace_path: Some(trace_path.clone()),
                ..RunOptions::default()
            };
            let reps = replicate_with(&cfg.build(), 8000, 3, 0, &opts);
            let xcheck = wait_crosscheck(&trace_path, &reps[0].output);
            let _ = std::fs::remove_file(&trace_path);
            assert!(
                xcheck.agrees_within(0.01),
                "{nodes}n/{}: analyzer mean wait {:.3}s disagrees with accounting {:.3}s (rel {:.4})",
                policy.name(),
                xcheck.analyzer_mean_wait_s,
                xcheck.db_mean_wait_s,
                xcheck.rel_err
            );
            let mut waits = Vec::new();
            let mut turns = Vec::new();
            let mut reuse_frac = Vec::new();
            let mut hw_frac = Vec::new();
            for r in &reps {
                let jobs = &r.output.db.jobs;
                waits.push(
                    jobs.iter().map(|j| j.wait().as_secs_f64()).sum::<f64>() / jobs.len() as f64,
                );
                turns.push(
                    jobs.iter()
                        .map(|j| j.end.saturating_since(j.submit).as_secs_f64())
                        .sum::<f64>()
                        / jobs.len() as f64,
                );
                let stats = r.output.site_stats[1].rc_stats;
                let placements = (stats.reuses + stats.reconfigs).max(1);
                reuse_frac.push(stats.reuses as f64 / placements as f64);
                hw_frac.push(jobs.iter().filter(|j| j.used_hw).count() as f64 / jobs.len() as f64);
            }
            let (mean_wait, ci) = tg_des::stats::ci_student_t(&waits);
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            points.push(F5Point {
                nodes,
                policy: policy.name().to_string(),
                mean_wait_s: mean_wait,
                ci,
                mean_turnaround_s: mean(&turns),
                reuse_fraction: mean(&reuse_frac),
                hw_fraction: mean(&hw_frac),
                trace_crosscheck: xcheck,
            });
        }
    }

    let mut table = Table::new(
        format!(
            "F5: RC-task mean wait (s) vs partition size ({tasks_per_day:.0} tasks/day offered)"
        ),
        &[
            "nodes",
            "policy",
            "mean wait",
            "turnaround",
            "reuse%",
            "hw%",
        ],
    );
    for p in &points {
        table.row(vec![
            p.nodes.to_string(),
            p.policy.clone(),
            format!("{:.1} ± {:.1}", p.mean_wait_s, p.ci),
            format!("{:.0}", p.mean_turnaround_s),
            format!("{:.0}%", 100.0 * p.reuse_fraction),
            format!("{:.0}%", 100.0 * p.hw_fraction),
        ]);
    }
    println!("{table}");

    let worst = points
        .iter()
        .map(|p| p.trace_crosscheck.rel_err)
        .fold(0.0f64, f64::max);
    println!(
        "trace cross-check: analyzer mean wait agrees with accounting at all {} points \
         (worst rel err {worst:.5})",
        points.len()
    );

    let aware: Vec<&F5Point> = points.iter().filter(|p| p.policy == "rc-aware").collect();
    let blind: Vec<&F5Point> = points.iter().filter(|p| p.policy == "rc-blind").collect();
    let wins = aware
        .iter()
        .zip(&blind)
        .filter(|(a, b)| a.mean_wait_s <= b.mean_wait_s)
        .count();
    println!(
        "rc-aware wins at {wins}/{} sizes; gap {:.1}s at 16 nodes, {:.1}s at 64 nodes",
        aware.len(),
        blind[2].mean_wait_s - aware[2].mean_wait_s,
        blind[4].mean_wait_s - aware[4].mean_wait_s,
    );

    save_json("exp_f5_rc_waiting", &points);
}
