//! A4 (ablation) — classifier rule-threshold sensitivity.
//!
//! The records-only classifier leans on two thresholds: the sustained
//! jobs/day rate above which an account reads as a gateway community
//! account, and the same-instant batch size above which submissions read
//! as machine-generated. This sweep maps macro-F1 and the gateway/ensemble
//! F1s across both, in both instrumentation modes.
//!
//! Expected shape: the attribute-equipped classifier is flat across the
//! sweep (attributes, not thresholds, carry the signal); the records-only
//! classifier has a ridge — too-low rate thresholds swallow busy humans
//! into "gateway", too-high ones miss real gateways; batch-size thresholds
//! below ~4 misread workflow stage-ins as ensembles.

use serde::Serialize;
use tg_bench::{save_json, Table};
use tg_core::classify::{classify_with, RuleThresholds};
use tg_core::{Accuracy, ClassifierMode, Modality, ScenarioConfig};

#[derive(Serialize)]
struct A4Point {
    mode: String,
    gateway_rate: f64,
    batch_size: u64,
    macro_f1: f64,
    gateway_f1: Option<f64>,
    ensemble_f1: Option<f64>,
    workflow_f1: Option<f64>,
}

fn main() {
    let out = ScenarioConfig::baseline(400, 30).build().run(18_000);
    let mut points = Vec::new();
    for mode in [ClassifierMode::WithAttributes, ClassifierMode::RecordsOnly] {
        for &gateway_rate in &[5.0, 10.0, 20.0, 40.0, 80.0] {
            for &batch_size in &[2u64, 3, 5, 10, 20] {
                let thresholds = RuleThresholds {
                    gateway_rate,
                    batch_size,
                    ..RuleThresholds::default()
                };
                let inferred = classify_with(&out.db, mode, &thresholds);
                let acc = Accuracy::score(&out.truth, &inferred);
                points.push(A4Point {
                    mode: mode.name().to_string(),
                    gateway_rate,
                    batch_size,
                    macro_f1: acc.macro_f1,
                    gateway_f1: acc.f1_of(Modality::ScienceGateway),
                    ensemble_f1: acc.f1_of(Modality::Ensemble),
                    workflow_f1: acc.f1_of(Modality::Workflow),
                });
            }
        }
    }

    // Print the macro-F1 grid per mode.
    for mode in ["with-attributes", "records-only"] {
        let mut table = Table::new(
            format!("A4: macro-F1 vs thresholds, mode = {mode}"),
            &["gw rate \\ batch", "2", "3", "5", "10", "20"],
        );
        for &rate in &[5.0, 10.0, 20.0, 40.0, 80.0] {
            let mut row = vec![format!("{rate}")];
            for &bs in &[2u64, 3, 5, 10, 20] {
                let p = points
                    .iter()
                    .find(|p| p.mode == mode && p.gateway_rate == rate && p.batch_size == bs)
                    .expect("point exists");
                row.push(format!("{:.3}", p.macro_f1));
            }
            table.row(row);
        }
        println!("{table}");
    }

    let spread = |mode: &str| {
        let vals: Vec<f64> = points
            .iter()
            .filter(|p| p.mode == mode)
            .map(|p| p.macro_f1)
            .collect();
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        (min, max)
    };
    let (amin, amax) = spread("with-attributes");
    let (rmin, rmax) = spread("records-only");
    println!(
        "macro-F1 spread across thresholds: with-attributes {:.3}–{:.3} (flat), \
         records-only {:.3}–{:.3} (threshold-sensitive)",
        amin, amax, rmin, rmax
    );

    save_json("exp_a4_classifier_thresholds", &points);
}
