//! F6 — Wasted FPGA area vs offered load for three placement policies.
//!
//! Wasted area = configured-but-idle fabric integrated over time, as a
//! fraction of total fabric capacity. Reuse-first keeps idle configurations
//! around *on purpose* (they are its cache), so it carries more nominally-
//! wasted area but performs far fewer reconfigurations per task; the pure
//! packing policies (first-fit / best-fit, reuse-agnostic and cost-blind)
//! trade the opposite way.
//!
//! Expected shape: busy fraction scales with load for every policy;
//! reuse-first's reconfigurations per task fall toward zero as load grows
//! (hotter regions, more hits) while the packing policies stay high; its
//! wait times are lowest throughout.

use serde::Serialize;
use tg_bench::{rc_only_config, rc_tasks_per_day_for_load, save_json, synthetic_library, Table};
use tg_core::replicate;
use tg_des::SimDuration;
use tg_sched::reconf::Packing;
use tg_sched::RcPolicy;

#[derive(Serialize)]
struct F6Point {
    load: f64,
    policy: String,
    wasted_area_fraction: f64,
    busy_area_fraction: f64,
    reconfigs_per_task: f64,
    mean_wait_s: f64,
}

fn main() {
    let policies: [(&str, RcPolicy); 3] = [
        ("reuse-first", RcPolicy::AWARE),
        (
            "best-fit",
            RcPolicy {
                seek_reuse: false,
                packing: Packing::BestFit,
                cost_aware: false,
            },
        ),
        (
            "first-fit",
            RcPolicy {
                seek_reuse: false,
                packing: Packing::FirstFit,
                cost_aware: false,
            },
        ),
    ];
    let nodes = 16;
    let days = 2;
    let mut points = Vec::new();
    for load in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let tasks_per_day = rc_tasks_per_day_for_load(nodes, 8, load);
        for (name, policy) in policies {
            let mut cfg = rc_only_config(nodes, 8, tasks_per_day, days, 12);
            cfg.rc_policy = policy;
            cfg.library = Some(synthetic_library(12, SimDuration::from_secs(15), 1.0));
            cfg.name = format!("f6-{load}-{name}");
            let reps = replicate(&cfg.build(), 9000, 3, 0);
            let mut wasted = Vec::new();
            let mut busy = Vec::new();
            let mut reconf_per_task = Vec::new();
            let mut waits = Vec::new();
            for r in &reps {
                let s = &r.output.site_stats[1];
                let dur = r.output.end.as_secs_f64();
                let capacity = (nodes as f64) * 8.0 * dur;
                wasted.push(s.rc_wasted_area_seconds / capacity);
                busy.push(s.rc_busy_area_seconds / capacity);
                let done = s.rc_stats.completed.max(1);
                reconf_per_task.push(s.rc_stats.reconfigs as f64 / done as f64);
                let jobs = &r.output.db.jobs;
                waits.push(
                    jobs.iter().map(|j| j.wait().as_secs_f64()).sum::<f64>()
                        / jobs.len().max(1) as f64,
                );
            }
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            points.push(F6Point {
                load,
                policy: name.to_string(),
                wasted_area_fraction: mean(&wasted),
                busy_area_fraction: mean(&busy),
                reconfigs_per_task: mean(&reconf_per_task),
                mean_wait_s: mean(&waits),
            });
        }
    }

    let mut table = Table::new(
        format!("F6: wasted-area fraction vs offered load ({nodes} nodes × 8 area)"),
        &[
            "load",
            "policy",
            "wasted",
            "busy",
            "reconf/task",
            "mean wait",
        ],
    );
    for p in &points {
        table.row(vec![
            format!("{:.1}", p.load),
            p.policy.clone(),
            format!("{:.3}", p.wasted_area_fraction),
            format!("{:.3}", p.busy_area_fraction),
            format!("{:.2}", p.reconfigs_per_task),
            format!("{:.1}s", p.mean_wait_s),
        ]);
    }
    println!("{table}");

    let get = |load: f64, name: &str| {
        points
            .iter()
            .find(|p| p.load == load && p.policy == name)
            .expect("present")
    };
    // At trivial loads every policy reconfigures only on first touch, so
    // compare where churn exists.
    let fewest = [0.5, 0.7, 0.9].iter().all(|&l| {
        get(l, "reuse-first").reconfigs_per_task <= get(l, "best-fit").reconfigs_per_task * 1.05
            && get(l, "reuse-first").reconfigs_per_task
                <= get(l, "first-fit").reconfigs_per_task * 1.05
    });
    println!("reuse-first has fewest reconfigs/task at loads ≥ 0.5: {fewest}");
    println!(
        "at load 0.9: reuse-first wait {:.1}s vs first-fit {:.1}s (setup churn costs capacity)",
        get(0.9, "reuse-first").mean_wait_s,
        get(0.9, "first-fit").mean_wait_s,
    );

    save_json("exp_f6_wasted_area", &points);
}
