//! T2 — Modality-classifier accuracy against ground truth, in both
//! instrumentation modes.
//!
//! Expected shape: with gateway attributes and interface tags, macro-F1 ≥
//! ~0.85 with gateway/RC near-perfect; records-only loses most of the
//! gateway and workflow recall — the measured gap is the quantitative case
//! for the attributes the TeraGrid added.

use serde::Serialize;
use tg_bench::{save_json, Table};
use tg_core::{classify_all, Accuracy, ClassifierMode, Modality, ScenarioConfig};

#[derive(Serialize)]
struct ModeResult {
    mode: String,
    accuracy: f64,
    macro_f1: f64,
    per_class_f1: Vec<Option<f64>>,
}

#[derive(Serialize)]
struct T2Output {
    scenario: String,
    jobs_scored: u64,
    modes: Vec<ModeResult>,
}

fn main() {
    let cfg = ScenarioConfig::baseline(500, 45);
    let out = cfg.build().run(2000);

    let mut results = Vec::new();
    for mode in [ClassifierMode::WithAttributes, ClassifierMode::RecordsOnly] {
        let inferred = classify_all(&out.db, mode);
        let acc = Accuracy::score(&out.truth, &inferred);

        let mut table = Table::new(
            format!("T2: classifier accuracy, mode = {}", mode.name()),
            &["modality", "precision", "recall", "F1"],
        );
        for m in Modality::ALL {
            let i = m.index();
            let fmt = |v: Option<f64>| match v {
                Some(x) => format!("{x:.3}"),
                None => "–".to_string(),
            };
            table.row(vec![
                m.name().into(),
                fmt(acc.precision[i]),
                fmt(acc.recall[i]),
                fmt(acc.f1[i]),
            ]);
        }
        println!("{table}");
        println!(
            "overall accuracy {:.3}, macro-F1 {:.3}\n",
            acc.accuracy, acc.macro_f1
        );
        if mode == ClassifierMode::WithAttributes {
            println!("confusion matrix (rows = truth, cols = inferred):");
            println!("{}", acc.matrix);
        }
        results.push(ModeResult {
            mode: mode.name().to_string(),
            accuracy: acc.accuracy,
            macro_f1: acc.macro_f1,
            per_class_f1: acc.f1.clone(),
        });
    }

    println!(
        "attribute value: macro-F1 {:.3} (with) vs {:.3} (records-only)",
        results[0].macro_f1, results[1].macro_f1
    );

    save_json(
        "exp_t2_classifier_accuracy",
        &T2Output {
            scenario: out.scenario,
            jobs_scored: out.db.jobs.len() as u64,
            modes: results,
        },
    );
}
