//! A3 (ablation) — fair-share queue ordering vs plain FIFO-EASY.
//!
//! The population's Zipf activity skew means a few projects dominate
//! consumption. Under FIFO ordering their torrent of jobs queues ahead of
//! everyone; fair-share ordering makes heavy projects absorb the queueing
//! they cause.
//!
//! Expected shape: light-project jobs wait far less under fair share;
//! heavy-project jobs wait more; overall utilization is unchanged (ordering
//! doesn't create or destroy capacity).

use serde::Serialize;
use std::collections::HashMap;
use tg_bench::{calibrated_users, save_json, single_site_config, Table};
use tg_core::{replicate, Modality};
use tg_sched::SchedulerKind;
use tg_workload::{ModalityProfile, ProjectId};

#[derive(Serialize)]
struct A3Result {
    scheduler: String,
    utilization: f64,
    heavy_mean_wait_s: f64,
    light_mean_wait_s: f64,
    heavy_to_light_ratio: f64,
}

fn main() {
    let nodes = 256;
    let cores = nodes * 8;
    let days = 21;
    let profile = ModalityProfile::default_for(Modality::BatchComputing);
    let users = calibrated_users(&profile, cores, 0.85);

    let mut results = Vec::new();
    for kind in [SchedulerKind::Easy, SchedulerKind::FairshareEasy] {
        let mut cfg = single_site_config(
            "a3",
            nodes,
            8,
            0,
            0,
            days,
            &[(Modality::BatchComputing, users)],
            kind,
        );
        // Strong activity skew → strongly unequal project consumption.
        cfg.workload.mix.activity_zipf_s = 1.2;
        cfg.workload.mix.projects = 24;
        let reps = replicate(&cfg.build(), 16_000, 3, 0);
        let mut utils = Vec::new();
        let mut heavy_waits = Vec::new();
        let mut light_waits = Vec::new();
        for r in &reps {
            utils.push(r.output.average_utilization());
            // Rank projects by consumed core-hours in this run.
            let mut usage: HashMap<ProjectId, f64> = HashMap::new();
            for j in &r.output.db.jobs {
                *usage.entry(j.project).or_insert(0.0) += j.core_hours();
            }
            let mut ranked: Vec<(ProjectId, f64)> = usage.into_iter().collect();
            ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
            let cut = (ranked.len() / 4).max(1);
            let heavy: Vec<ProjectId> = ranked[..cut].iter().map(|&(p, _)| p).collect();
            let light: Vec<ProjectId> = ranked[ranked.len() - cut..]
                .iter()
                .map(|&(p, _)| p)
                .collect();
            let mean_wait = |set: &[ProjectId]| {
                let jobs: Vec<_> = r
                    .output
                    .db
                    .jobs
                    .iter()
                    .filter(|j| set.contains(&j.project))
                    .collect();
                jobs.iter().map(|j| j.wait().as_secs_f64()).sum::<f64>() / jobs.len().max(1) as f64
            };
            heavy_waits.push(mean_wait(&heavy));
            light_waits.push(mean_wait(&light));
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let heavy = mean(&heavy_waits);
        let light = mean(&light_waits);
        results.push(A3Result {
            scheduler: kind.name().to_string(),
            utilization: mean(&utils),
            heavy_mean_wait_s: heavy,
            light_mean_wait_s: light,
            heavy_to_light_ratio: heavy / light.max(1.0),
        });
    }

    let mut table = Table::new(
        "A3: fair-share ordering ablation (top-quartile vs bottom-quartile projects)",
        &[
            "scheduler",
            "util",
            "heavy wait",
            "light wait",
            "heavy/light",
        ],
    );
    for r in &results {
        table.row(vec![
            r.scheduler.clone(),
            format!("{:.3}", r.utilization),
            format!("{:.0}s", r.heavy_mean_wait_s),
            format!("{:.0}s", r.light_mean_wait_s),
            format!("{:.2}", r.heavy_to_light_ratio),
        ]);
    }
    println!("{table}");

    let easy = &results[0];
    let fs = &results[1];
    println!(
        "light-project wait: {:.0}s (easy) → {:.0}s (fairshare), {:.1}× better; \
         heavy/light ratio {:.2} → {:.2}",
        easy.light_mean_wait_s,
        fs.light_mean_wait_s,
        easy.light_mean_wait_s / fs.light_mean_wait_s.max(1.0),
        easy.heavy_to_light_ratio,
        fs.heavy_to_light_ratio,
    );

    save_json("exp_a3_fairshare", &results);
}
