//! T6 — the price of simultaneity: co-allocation slack vs background load
//! and site count.
//!
//! Co-allocated (grid-MPI / coupled multi-physics) runs need their core
//! shares at every site **at the same instant**. The planner finds the
//! earliest common start against per-site availability profiles; the
//! *coordination slack* — common start minus the slowest site's own
//! earliest start — is the price the simultaneity requirement adds on top
//! of ordinary queueing.
//!
//! Expected shape: slack is zero for single-site requests by definition,
//! grows with the number of participating sites, and grows sharply with
//! background load (free windows become short and misaligned).

use serde::Serialize;
use tg_bench::{save_json, Table};
use tg_des::dist::{Dist, Exponential};
use tg_des::{RngFactory, SimDuration, SimRng, SimTime, StreamId};
use tg_model::SiteId;
use tg_sched::{plan_coallocation, CoallocRequest, Profile};

const SITES: usize = 4;
const CORES: usize = 256;

/// A site profile fragmented far into the future: the machine is modeled
/// as 32-core blocks, each alternating busy/free with exponential periods
/// whose duty cycle equals `load`, out to a one-week horizon. Unlike a
/// decaying running-set, this keeps *future* busy windows everywhere, so
/// free windows across sites genuinely fail to line up — the situation
/// co-allocation has to negotiate.
fn synthetic_profile(load: f64, rng: &mut SimRng) -> Profile {
    let mut p = Profile::new(SimTime::ZERO, CORES);
    let busy_dist = Exponential::with_mean(7200.0); // 2 h busy stretches
    let gap_mean = 7200.0 * (1.0 - load) / load.max(0.05);
    let gap_dist = Exponential::with_mean(gap_mean.max(60.0));
    let horizon = 168.0 * 3600.0; // one week of fragmentation
    let block = 32usize;
    for _ in 0..(CORES / block) {
        // Random phase: start busy or free.
        let mut t = if rng.chance(load) {
            0.0
        } else {
            gap_dist.sample(rng)
        };
        while t < horizon {
            let busy = busy_dist.sample(rng).max(60.0);
            p.reserve(
                SimTime::from_secs_f64(t),
                SimDuration::from_secs_f64(busy),
                block,
            );
            t += busy + gap_dist.sample(rng).max(60.0);
        }
    }
    p
}

#[derive(Serialize)]
struct T6Point {
    load: f64,
    sites: usize,
    mean_slack_s: f64,
    mean_start_s: f64,
    p95_slack_s: f64,
}

fn main() {
    let factory = RngFactory::new(19_000);
    let requests_per_point = 300;
    let mut points = Vec::new();
    for &load in &[0.3, 0.5, 0.65, 0.8] {
        for k in 1..=SITES {
            let mut slacks = Vec::with_capacity(requests_per_point);
            let mut starts = Vec::with_capacity(requests_per_point);
            for r in 0..requests_per_point {
                let mut rng = factory.stream(StreamId::new(
                    "t6",
                    (load * 100.0) as u64 * 10_000 + k as u64 * 1_000 + r as u64,
                ));
                let profiles: Vec<Profile> = (0..SITES)
                    .map(|_| synthetic_profile(load, &mut rng))
                    .collect();
                let parts: Vec<(SiteId, usize)> = (0..k).map(|s| (SiteId(s), 64)).collect();
                let request = CoallocRequest::new(parts, SimDuration::from_hours(1));
                let plan = plan_coallocation(&profiles, &request, SimTime::ZERO)
                    .expect("64 cores always eventually free");
                slacks.push(plan.coordination_slack().as_secs_f64());
                starts.push(plan.start.as_secs_f64());
            }
            slacks.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            points.push(T6Point {
                load,
                sites: k,
                mean_slack_s: mean(&slacks),
                mean_start_s: mean(&starts),
                p95_slack_s: tg_des::stats::exact_quantile(&slacks, 0.95).expect("non-empty"),
            });
        }
    }

    let mut table = Table::new(
        format!("T6: co-allocation coordination slack ({SITES} sites × {CORES} cores, 64-core parts, 1 h)"),
        &["load", "sites", "mean slack", "p95 slack", "mean start"],
    );
    for p in &points {
        table.row(vec![
            format!("{:.2}", p.load),
            p.sites.to_string(),
            format!("{:.0}s", p.mean_slack_s),
            format!("{:.0}s", p.p95_slack_s),
            format!("{:.0}s", p.mean_start_s),
        ]);
    }
    println!("{table}");

    let get = |load: f64, k: usize| {
        points
            .iter()
            .find(|p| p.load == load && p.sites == k)
            .expect("present")
    };
    println!(
        "single-site slack is zero by construction: {}",
        [0.3, 0.5, 0.65, 0.8]
            .iter()
            .all(|&l| get(l, 1).mean_slack_s == 0.0)
    );
    println!(
        "slack grows with sites at load 0.65: {:.0}s (2 sites) → {:.0}s (4 sites)",
        get(0.65, 2).mean_slack_s,
        get(0.65, 4).mean_slack_s
    );
    println!(
        "slack grows with load at 4 sites: {:.0}s (0.3) → {:.0}s (0.8)",
        get(0.3, 4).mean_slack_s,
        get(0.8, 4).mean_slack_s
    );
    println!(
        "beyond ~0.8 sustained load, hour-long multi-site holes effectively \
         stop existing — co-allocation there needs advance reservations, \
         not opportunistic planning."
    );

    save_json("exp_t6_coalloc", &points);
}
