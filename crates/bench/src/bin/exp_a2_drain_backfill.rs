//! A2 (ablation) — pre-drain filling on/off under the weekly-drain policy.
//!
//! The drain wall is a full-machine reservation; the question is whether
//! the scheduler keeps packing estimate-bounded jobs underneath it
//! (weekly-drain) or idles the machine until the wall (naive-drain).
//!
//! Expected shape: filling recovers most of the pre-drain idle time —
//! several utilization points per armed week — with identical hero service.

use serde::Serialize;
use tg_bench::{calibrated_users, save_json, single_site_config, Table};
use tg_core::{replicate_with, Modality, RunOptions};
use tg_sched::SchedulerKind;
use tg_workload::ModalityProfile;

#[derive(Serialize)]
struct A2Result {
    scheduler: String,
    utilization: f64,
    ci: f64,
    normal_mean_wait_s: f64,
    hero_mean_wait_h: f64,
    backfills: u64,
    drains: u64,
}

fn main() {
    let nodes = 256;
    let cores = nodes * 8;
    let days = 28;
    let profile = ModalityProfile::default_for(Modality::BatchComputing);
    let users = calibrated_users(&profile, cores, 0.75);
    let hero_threshold = (cores as f64 * 0.9) as usize;

    let mut results = Vec::new();
    for kind in [SchedulerKind::WeeklyDrain, SchedulerKind::NaiveDrain] {
        let cfg = single_site_config(
            "a2",
            nodes,
            8,
            0,
            0,
            days,
            &[(Modality::BatchComputing, users)],
            kind,
        );
        let reps = replicate_with(&cfg.build(), 15_000, 3, 0, &RunOptions::with_metrics());
        let mut utils = Vec::new();
        let mut normal_waits = Vec::new();
        let mut hero_waits = Vec::new();
        for r in &reps {
            utils.push(r.output.average_utilization());
            let (heroes, normal): (Vec<_>, Vec<_>) = r
                .output
                .db
                .jobs
                .iter()
                .partition(|j| j.cores >= hero_threshold);
            normal_waits.push(
                normal.iter().map(|j| j.wait().as_secs_f64()).sum::<f64>()
                    / normal.len().max(1) as f64,
            );
            if !heroes.is_empty() {
                hero_waits.push(
                    heroes.iter().map(|j| j.wait().as_hours_f64()).sum::<f64>()
                        / heroes.len() as f64,
                );
            }
        }
        let (util, ci) = tg_des::stats::ci_student_t(&utils);
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        // Scheduler-internal counters surface through the metrics snapshot:
        // the weekly-drain policy both backfills under the wall and completes
        // drains; naive draining does neither.
        let backfills = mean(
            &reps
                .iter()
                .map(|r| {
                    r.output
                        .metrics
                        .as_ref()
                        .expect("metrics requested")
                        .counter_sum("sched.backfills.") as f64
                })
                .collect::<Vec<_>>(),
        )
        .round() as u64;
        let drains = mean(
            &reps
                .iter()
                .map(|r| {
                    r.output
                        .metrics
                        .as_ref()
                        .expect("metrics requested")
                        .counter_sum("sched.drains.") as f64
                })
                .collect::<Vec<_>>(),
        )
        .round() as u64;
        results.push(A2Result {
            scheduler: kind.name().to_string(),
            utilization: util,
            ci,
            normal_mean_wait_s: mean(&normal_waits),
            hero_mean_wait_h: mean(&hero_waits),
            backfills,
            drains,
        });
    }

    let mut table = Table::new(
        "A2: pre-drain filling ablation (weekly drain, hero jobs present)",
        &[
            "scheduler",
            "utilization",
            "normal wait (s)",
            "hero wait (h)",
            "backfills",
            "drains",
        ],
    );
    for r in &results {
        table.row(vec![
            r.scheduler.clone(),
            format!("{:.3} ± {:.3}", r.utilization, r.ci),
            format!("{:.0}", r.normal_mean_wait_s),
            format!("{:.1}", r.hero_mean_wait_h),
            r.backfills.to_string(),
            r.drains.to_string(),
        ]);
    }
    println!("{table}");

    println!(
        "filling recovers {:+.1} utilization points over naive draining",
        100.0 * (results[0].utilization - results[1].utilization)
    );

    save_json("exp_a2_drain_backfill", &results);
}
