//! F1 — NU usage by modality across eight simulated "quarters" with science-
//! gateway adoption ramping.
//!
//! Each quarter is its own simulation window with a larger gateway
//! population (new community users arriving through portals) while the
//! traditional populations stay fixed.
//!
//! Expected shape: the gateway NU share rises monotonically across
//! quarters; batch remains the largest NU consumer but its share declines.

use serde::Serialize;
use tg_bench::{save_json, Table};
use tg_core::report::ModalityShares;
use tg_core::{Modality, ScenarioConfig};

#[derive(Serialize)]
struct F1Output {
    quarters: usize,
    gateway_users_per_quarter: Vec<usize>,
    nu_share_series: Vec<Vec<f64>>, // [modality][quarter]
}

fn main() {
    let quarters = 8;
    let days_per_quarter = 21;
    let base_users = 350;
    let mut gw_users_series = Vec::new();
    let mut nu_share: Vec<Vec<f64>> = vec![Vec::new(); Modality::ALL.len()];

    for q in 0..quarters {
        let mut cfg = ScenarioConfig::baseline(base_users, days_per_quarter);
        // Ramp gateway adoption: 40 → 400 community users over two years.
        let gw = 40 + q * 52;
        cfg.workload.mix.users_per_modality[Modality::ScienceGateway.index()] = gw;
        cfg.name = format!("f1-q{q}");
        gw_users_series.push(gw);
        let out = cfg.build().run(3000 + q as u64);
        let shares = ModalityShares::compute(&out.db, &out.truth, &out.charge_policy);
        for m in Modality::ALL {
            nu_share[m.index()].push(shares.nu_share(m));
        }
    }

    let mut table = Table::new(
        "F1: NU share by modality per quarter (gateway adoption ramp)",
        &[
            "quarter",
            "gw users",
            "batch",
            "interactive",
            "gateway",
            "workflow",
            "ensemble",
            "data",
            "rc",
        ],
    );
    for q in 0..quarters {
        let mut row = vec![format!("Q{}", q + 1), gw_users_series[q].to_string()];
        for m in Modality::ALL {
            row.push(format!("{:.1}%", 100.0 * nu_share[m.index()][q]));
        }
        table.row(row);
    }
    println!("{table}");

    let gw = &nu_share[Modality::ScienceGateway.index()];
    let rises = gw.windows(2).filter(|w| w[1] > w[0]).count();
    println!(
        "gateway NU share rises in {rises}/{} transitions ({:.1}% → {:.1}%)",
        quarters - 1,
        100.0 * gw[0],
        100.0 * gw[quarters - 1]
    );
    let batch = &nu_share[Modality::BatchComputing.index()];
    println!(
        "batch NU share declines {:.1}% → {:.1}% but stays largest in Q{}: {}",
        100.0 * batch[0],
        100.0 * batch[quarters - 1],
        quarters,
        Modality::ALL.iter().all(|&m| m == Modality::BatchComputing
            || nu_share[m.index()][quarters - 1] <= batch[quarters - 1])
    );

    save_json(
        "exp_f1_quarterly_trend",
        &F1Output {
            quarters,
            gateway_users_per_quarter: gw_users_series,
            nu_share_series: nu_share,
        },
    );
}
