//! F4 — Science-gateway adoption sweep: as the share of users arriving
//! through gateways grows, how do user counts, job counts, NU consumption,
//! and gateway job waits move?
//!
//! Expected shape: gateway *user* share grows much faster than gateway *NU*
//! share (gateways multiply small users, not big compute); visible community
//! accounts stay constant (the gateways), which is exactly why per-account
//! accounting under-counted gateway reach before end-user attributes.

use serde::Serialize;
use tg_bench::{save_json, Table};
use tg_core::report::ModalityShares;
use tg_core::{run_sweep, Modality, ScenarioConfig};

#[derive(Serialize)]
struct F4Point {
    adoption_pct: usize,
    gateway_users: usize,
    total_users: usize,
    job_share: f64,
    nu_share: f64,
    visible_accounts: u64,
    gateway_mean_wait_s: f64,
}

fn main() {
    let total = 400usize;
    // Sweep cells are independent runs; `run_sweep` fills the machine's
    // cores while keeping each cell's seed stream untouched.
    let grid = [5usize, 10, 20, 40, 60, 80];
    let points: Vec<F4Point> = run_sweep(&grid, 0, |_, &adoption_pct| {
        let gw_users = total * adoption_pct / 100;
        let mut cfg = ScenarioConfig::baseline(total, 28);
        // Rebalance: gateway takes `adoption`, the remainder splits between
        // batch and interactive proportionally to the baseline.
        let rest = total - gw_users;
        let mix = &mut cfg.workload.mix;
        mix.users_per_modality[Modality::ScienceGateway.index()] = gw_users;
        mix.users_per_modality[Modality::BatchComputing.index()] = rest * 55 / 100;
        mix.users_per_modality[Modality::Interactive.index()] = rest * 45 / 100;
        for m in [
            Modality::Workflow,
            Modality::Ensemble,
            Modality::DataMovement,
            Modality::RcAccelerated,
        ] {
            mix.users_per_modality[m.index()] = 0;
        }
        cfg.workload.rc_sites.clear();
        cfg.workload.rc_config_count = 0;
        cfg.name = format!("f4-{adoption_pct}pct");
        let out = cfg.build().run(6000 + adoption_pct as u64);
        let shares = ModalityShares::compute(&out.db, &out.truth, &out.charge_policy);
        F4Point {
            adoption_pct,
            gateway_users: gw_users,
            total_users: total,
            job_share: shares.job_share(Modality::ScienceGateway),
            nu_share: shares.nu_share(Modality::ScienceGateway),
            visible_accounts: shares.accounts[Modality::ScienceGateway.index()],
            gateway_mean_wait_s: shares.mean_wait_s[Modality::ScienceGateway.index()],
        }
    });

    let mut table = Table::new(
        "F4: gateway adoption sweep (400 users total, 28 days)",
        &[
            "adoption",
            "gw users",
            "job share",
            "NU share",
            "visible accts",
            "mean wait",
        ],
    );
    for p in &points {
        table.row(vec![
            format!("{}%", p.adoption_pct),
            p.gateway_users.to_string(),
            format!("{:.1}%", 100.0 * p.job_share),
            format!("{:.1}%", 100.0 * p.nu_share),
            p.visible_accounts.to_string(),
            format!("{:.0}s", p.gateway_mean_wait_s),
        ]);
    }
    println!("{table}");

    let first = &points[0];
    let last = &points[points.len() - 1];
    println!(
        "user share 5% → 80% drives job share {:.1}% → {:.1}% but NU share only {:.1}% → {:.1}%",
        100.0 * first.job_share,
        100.0 * last.job_share,
        100.0 * first.nu_share,
        100.0 * last.nu_share
    );
    println!(
        "visible accounts stay ≈ constant ({} → {}) while real users grow {}×",
        first.visible_accounts,
        last.visible_accounts,
        last.gateway_users / first.gateway_users.max(1)
    );

    save_json("exp_f4_gateway_sweep", &points);
}
