//! T3 — Metascheduler site-selection policies on a heterogeneous
//! three-site federation with unpinned jobs.
//!
//! Expected shape: shortest-ETA < least-loaded < random on mean time-to-
//! start; the data-aware policy wins on *total* turnaround once staging
//! costs matter (heavy inputs + a thin pipe to one site).

use serde::Serialize;
use tg_bench::{save_json, Table};
use tg_core::{replicate, Modality, ScenarioConfig};
use tg_des::dist::DistKind;
use tg_sched::MetaPolicy;
use tg_workload::PopulationMix;

#[derive(Serialize)]
struct T3Result {
    policy: String,
    mean_time_to_start_s: f64,
    ci: f64,
    mean_turnaround_s: f64,
    utilization_spread: f64,
}

fn main() {
    let mut results = Vec::new();
    for policy in MetaPolicy::ALL {
        let mut cfg = ScenarioConfig::baseline(260, 21);
        // Shrink the machines so queueing (and thus placement) matters.
        // The *biggest, fastest* machine sits behind a thin WAN pipe — the
        // configuration where queue-only placement and data-aware placement
        // genuinely disagree.
        cfg.sites[0].batch_nodes = 96;
        cfg.sites[1].batch_nodes = 128;
        cfg.sites[2].batch_nodes = 320;
        cfg.sites[2].core_speed = 1.4;
        cfg.sites[2].wan_bandwidth_mbps = 25.0;
        cfg.meta = policy;
        cfg.name = format!("t3-{}", policy.name());
        // Unpinned, batch-only, with heavy inputs so data-awareness matters.
        cfg.workload.mix = PopulationMix {
            users_per_modality: [0; Modality::ALL.len()],
            projects: 16,
            activity_zipf_s: 0.8,
            gateways: 1,
        };
        cfg.workload.mix.users_per_modality[Modality::BatchComputing.index()] = 60;
        cfg.workload.rc_sites.clear();
        cfg.workload.rc_config_count = 0;
        {
            let p = cfg.workload.profile_mut(Modality::BatchComputing);
            p.site_pinned_prob = 0.0;
            // Inputs in the tens-to-hundreds of GB: staging over the thin
            // pipe costs time on the same scale as queue waits, which is
            // the regime data-aware placement exists for.
            p.input_mb = DistKind::Pareto {
                xm: 20_000.0,
                alpha: 1.2,
            };
        }

        let reps = replicate(&cfg.build(), 7000, 5, 0);
        let mut tts = Vec::new();
        let mut turnaround_all = Vec::new();
        let mut spreads = Vec::new();
        for r in &reps {
            let jobs = &r.output.db.jobs;
            let mean_tts =
                jobs.iter().map(|j| j.wait().as_secs_f64()).sum::<f64>() / jobs.len() as f64;
            tts.push(mean_tts);
            let mean_turn = jobs
                .iter()
                .map(|j| j.end.saturating_since(j.submit).as_secs_f64())
                .sum::<f64>()
                / jobs.len() as f64;
            turnaround_all.push(mean_turn);
            let utils: Vec<f64> = r.output.site_stats.iter().map(|s| s.utilization).collect();
            let mean_u = utils.iter().sum::<f64>() / utils.len() as f64;
            let spread = utils
                .iter()
                .map(|u| (u - mean_u).abs())
                .fold(0.0f64, f64::max);
            spreads.push(spread);
        }
        let (mean_tts, ci) = tg_des::stats::ci_student_t(&tts);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        results.push(T3Result {
            policy: policy.name().to_string(),
            mean_time_to_start_s: mean_tts,
            ci,
            mean_turnaround_s: mean(&turnaround_all),
            utilization_spread: mean(&spreads),
        });
    }

    let mut table = Table::new(
        "T3: metascheduler site-selection policies (3 heterogeneous sites, heavy inputs)",
        &["policy", "time-to-start", "turnaround", "util spread"],
    );
    for r in &results {
        table.row(vec![
            r.policy.clone(),
            format!("{:.0}s ± {:.0}", r.mean_time_to_start_s, r.ci),
            format!("{:.0}s", r.mean_turnaround_s),
            format!("{:.3}", r.utilization_spread),
        ]);
    }
    println!("{table}");

    let by = |name: &str| {
        results
            .iter()
            .find(|r| r.policy == name)
            .expect("policy present")
    };
    println!(
        "eta {:.0}s ≤ least-loaded {:.0}s ≤ random {:.0}s (time-to-start)",
        by("eta").mean_time_to_start_s,
        by("least-loaded").mean_time_to_start_s,
        by("random").mean_time_to_start_s,
    );
    println!(
        "data-aware turnaround {:.0}s vs eta {:.0}s (staging-aware wins: {})",
        by("data-aware").mean_turnaround_s,
        by("eta").mean_turnaround_s,
        by("data-aware").mean_turnaround_s < by("eta").mean_turnaround_s,
    );

    save_json("exp_t3_metasched", &results);
}
