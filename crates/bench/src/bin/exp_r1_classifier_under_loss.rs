//! R1 — Classifier robustness under lossy accounting ingest.
//!
//! The measurement program infers usage modalities from the records the
//! federation's accounting pipeline delivers. This experiment corrupts that
//! pipeline — each record independently dropped with probability `loss` —
//! while ground truth (what users actually ran) stays intact, then sweeps
//! `loss` and reads off (a) T2-style classifier accuracy and (b) T1-style
//! usage shares computed from the surviving records.
//!
//! The ingest channel draws a fate for *every* record regardless of the
//! loss rate, so the same records die in the same order as `loss` grows:
//! each sweep point's database is a superset of the next, and *coverage*
//! accuracy (correct inferences over all of ground truth) is monotonically
//! non-increasing by construction. The binary asserts that. Per-covered-job
//! accuracy and the share tables show the subtler story: the classifier
//! stays sharp on the records it still sees, while the measured share table
//! drifts from the healthy baseline as losses mount.

use serde::Serialize;
use std::collections::HashMap;
use tg_bench::{save_json, Table};
use tg_core::{
    classify_all, Accuracy, ClassifierMode, ConfusionMatrix, FaultSpec, IngestFaults, Modality,
    ScenarioConfig, SimOutput,
};

const LOSS_RATES: [f64; 5] = [0.0, 0.05, 0.10, 0.15, 0.20];
const SEED: u64 = 1000;

#[derive(Serialize)]
struct ModeResult {
    mode: String,
    /// Correct inferences / jobs the classifier could see.
    accuracy_on_covered: f64,
    /// Correct inferences / all ground-truth jobs (missing records count
    /// as misses) — the headline robustness number.
    coverage_accuracy: f64,
}

#[derive(Serialize)]
struct SweepPoint {
    loss: f64,
    records_lost: u64,
    records_kept: usize,
    truth_jobs: usize,
    modes: Vec<ModeResult>,
    /// Measured job share per modality (inferred with attributes, over the
    /// surviving records).
    job_share: Vec<f64>,
    /// Measured NU (charge) share per modality from the surviving records.
    nu_share: Vec<f64>,
    /// L1 distance of the measured job-share vector from the loss-free one.
    job_share_l1_drift: f64,
}

#[derive(Serialize)]
struct R1Output {
    scenario: String,
    seed: u64,
    loss_rates: Vec<f64>,
    points: Vec<SweepPoint>,
}

fn run_at(loss: f64) -> SimOutput {
    let mut cfg = ScenarioConfig::baseline(300, 14);
    if loss > 0.0 {
        cfg.faults = Some(FaultSpec {
            ingest: Some(IngestFaults {
                loss,
                duplication: 0.0,
            }),
            ..FaultSpec::default()
        });
    }
    cfg.build().run(SEED)
}

/// Measured shares from the records alone: classify every job record, then
/// tally job counts and charged NUs per inferred modality.
fn measured_shares(out: &SimOutput) -> (Vec<f64>, Vec<f64>) {
    let inferred = classify_all(&out.db, ClassifierMode::WithAttributes);
    let mut jobs = vec![0u64; Modality::ALL.len()];
    let mut nus = vec![0f64; Modality::ALL.len()];
    for rec in &out.db.jobs {
        let m = inferred
            .get(&rec.job)
            .copied()
            .unwrap_or(Modality::BatchComputing);
        jobs[m.index()] += 1;
        nus[m.index()] += out.charge_policy.nu(rec);
    }
    let jt: f64 = jobs.iter().sum::<u64>() as f64;
    let nt: f64 = nus.iter().sum::<f64>();
    (
        jobs.iter().map(|&j| j as f64 / jt.max(1.0)).collect(),
        nus.iter().map(|&n| n / nt.max(1e-9)).collect(),
    )
}

fn main() {
    let mut points = Vec::new();
    let mut healthy_job_share: Vec<f64> = Vec::new();
    let mut scenario_name = String::new();

    for &loss in &LOSS_RATES {
        let out = run_at(loss);
        scenario_name = out.scenario.clone();
        let truth_jobs = out.truth.len();
        let seen: HashMap<_, _> = out.db.jobs.iter().map(|j| (j.job, j)).collect();

        let modes = [ClassifierMode::WithAttributes, ClassifierMode::RecordsOnly]
            .iter()
            .map(|&mode| {
                let inferred = classify_all(&out.db, mode);
                let matrix = ConfusionMatrix::from_maps(&out.truth, &inferred);
                let covered = Accuracy::from_matrix(matrix.clone());
                ModeResult {
                    mode: mode.name().to_string(),
                    accuracy_on_covered: covered.accuracy,
                    coverage_accuracy: matrix.correct() as f64 / truth_jobs.max(1) as f64,
                }
            })
            .collect::<Vec<_>>();

        let (job_share, nu_share) = measured_shares(&out);
        if healthy_job_share.is_empty() {
            healthy_job_share = job_share.clone();
        }
        let drift: f64 = job_share
            .iter()
            .zip(&healthy_job_share)
            .map(|(a, b)| (a - b).abs())
            .sum();

        points.push(SweepPoint {
            loss,
            records_lost: out
                .fault_report
                .as_ref()
                .map(|r| r.records_lost)
                .unwrap_or(0),
            records_kept: seen.len(),
            truth_jobs,
            modes,
            job_share,
            nu_share,
            job_share_l1_drift: drift,
        });
    }

    let mut table = Table::new(
        "R1: classifier accuracy and share drift vs accounting-ingest loss",
        &[
            "loss",
            "lost",
            "kept",
            "cov-acc(attr)",
            "acc(attr)",
            "cov-acc(rec)",
            "share-L1",
        ],
    );
    for p in &points {
        table.row(vec![
            format!("{:.0}%", 100.0 * p.loss),
            p.records_lost.to_string(),
            p.records_kept.to_string(),
            format!("{:.4}", p.modes[0].coverage_accuracy),
            format!("{:.4}", p.modes[0].accuracy_on_covered),
            format!("{:.4}", p.modes[1].coverage_accuracy),
            format!("{:.4}", p.job_share_l1_drift),
        ]);
    }
    println!("{table}");

    // Monotone coupling must hold: coverage accuracy never improves as the
    // loss rate grows, in either classifier mode.
    for mode_idx in 0..2 {
        for w in points.windows(2) {
            let (a, b) = (
                w[0].modes[mode_idx].coverage_accuracy,
                w[1].modes[mode_idx].coverage_accuracy,
            );
            assert!(
                b <= a + 1e-9,
                "coverage accuracy must degrade monotonically: {a:.4} -> {b:.4} \
                 at loss {:.2} ({})",
                w[1].loss,
                points[0].modes[mode_idx].mode,
            );
        }
    }
    println!("monotone degradation check: OK (both modes, {LOSS_RATES:?})");

    save_json(
        "exp_r1_classifier_under_loss",
        &R1Output {
            scenario: scenario_name,
            seed: SEED,
            loss_rates: LOSS_RATES.to_vec(),
            points,
        },
    );
}
