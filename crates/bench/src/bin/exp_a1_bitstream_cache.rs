//! A1 (ablation) — node-local bitstream caching on/off under configuration
//! churn.
//!
//! The library holds 48 configurations — more than the 16-node fabric can
//! keep resident — so regions are continually evicted and reconfigured.
//! Bitstreams are large (80–240 MB) and cross a thin WAN pipe on a miss.
//!
//! Expected shape: caching converts most fetches into hits (cutting mean
//! setup latency by the transfer term) while reconfiguration *counts*
//! barely move — caching saves bytes, reuse saves reconfigurations.

use serde::Serialize;
use tg_bench::{rc_only_config, rc_tasks_per_day_for_load, save_json, synthetic_library, Table};
use tg_core::replicate;
use tg_des::SimDuration;

#[derive(Serialize)]
struct A1Result {
    cache_capacity: usize,
    bitstream_fetches: f64,
    bitstream_hits: f64,
    reconfigs: f64,
    mean_setup_s: f64,
    mean_wait_s: f64,
}

fn main() {
    let nodes = 16;
    let configs = 48;
    let tasks_per_day = rc_tasks_per_day_for_load(nodes, 8, 0.6);
    let mut results = Vec::new();
    for cache in [0usize, 4, 16] {
        let mut cfg = rc_only_config(nodes, 8, tasks_per_day, 2, configs);
        cfg.sites[1].rc_bitstream_cache = cache;
        cfg.library = Some(synthetic_library(
            configs,
            SimDuration::from_secs(5),
            10.0, // 80–240 MB bitstreams
        ));
        cfg.name = format!("a1-cache{cache}");
        let reps = replicate(&cfg.build(), 14_000, 3, 0);
        let mut fetches = Vec::new();
        let mut hits = Vec::new();
        let mut reconfigs = Vec::new();
        let mut setup = Vec::new();
        let mut waits = Vec::new();
        for r in &reps {
            let s = r.output.site_stats[1].rc_stats;
            fetches.push(s.bitstream_fetches as f64);
            hits.push(s.bitstream_hits as f64);
            reconfigs.push(s.reconfigs as f64);
            let placements = &r.output.db.rc_placements;
            setup.push(
                placements
                    .iter()
                    .map(|p| (p.transfer + p.reconfig).as_secs_f64())
                    .sum::<f64>()
                    / placements.len().max(1) as f64,
            );
            let jobs = &r.output.db.jobs;
            waits.push(
                jobs.iter().map(|j| j.wait().as_secs_f64()).sum::<f64>() / jobs.len().max(1) as f64,
            );
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        results.push(A1Result {
            cache_capacity: cache,
            bitstream_fetches: mean(&fetches),
            bitstream_hits: mean(&hits),
            reconfigs: mean(&reconfigs),
            mean_setup_s: mean(&setup),
            mean_wait_s: mean(&waits),
        });
    }

    let mut table = Table::new(
        format!("A1: bitstream cache ablation ({nodes} RC nodes, {configs} configurations)"),
        &[
            "cache",
            "fetches",
            "hits",
            "reconfigs",
            "mean setup",
            "mean wait",
        ],
    );
    for r in &results {
        table.row(vec![
            r.cache_capacity.to_string(),
            format!("{:.0}", r.bitstream_fetches),
            format!("{:.0}", r.bitstream_hits),
            format!("{:.0}", r.reconfigs),
            format!("{:.2}s", r.mean_setup_s),
            format!("{:.1}s", r.mean_wait_s),
        ]);
    }
    println!("{table}");

    let off = &results[0];
    let on = results.last().expect("non-empty");
    println!(
        "cache=16 cuts fetches {:.0} → {:.0} ({:.0}% saved); reconfigs stay {:.0} → {:.0}; setup {:.2}s → {:.2}s",
        off.bitstream_fetches,
        on.bitstream_fetches,
        100.0 * (1.0 - on.bitstream_fetches / off.bitstream_fetches.max(1.0)),
        off.reconfigs,
        on.reconfigs,
        off.mean_setup_s,
        on.mean_setup_s,
    );

    save_json("exp_a1_bitstream_cache", &results);
}
