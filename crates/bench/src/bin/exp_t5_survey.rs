//! T5 — survey-based vs accounting-based modality measurement.
//!
//! The measurement program has two instruments: the accounting record
//! stream (T2) and user surveys. Surveys reach the humans records can't
//! (gateway end users without accounts) but suffer non-response bias and
//! self-report confusion. This experiment quantifies the triangle:
//!
//! * ground-truth user shares (the generator knows them);
//! * survey estimates, naive and inverse-response-weighted, under a
//!   realistic response model;
//! * accounting *account* shares — which collapse each gateway's users
//!   into one community account.
//!
//! Expected shape: the naive survey badly under-counts gateway users (they
//! don't answer resource-provider surveys); response weighting largely
//! repairs it; accounting by accounts is hopeless for *user* shares (6
//! community accounts ≠ hundreds of users) — which is why the paper's
//! program needs gateway attributes *and* surveys.

use serde::Serialize;
use tg_bench::{save_json, Table};
use tg_core::survey::{run_survey, true_user_shares, SurveyDesign};
use tg_core::Modality;
use tg_des::{RngFactory, StreamId};
use tg_workload::{GeneratorConfig, WorkloadGenerator};

#[derive(Serialize)]
struct T5Output {
    truth: Vec<f64>,
    survey_naive: Vec<f64>,
    survey_weighted: Vec<f64>,
    invited: u64,
    responded: u64,
    l1_naive: f64,
    l1_weighted: f64,
    replications: usize,
}

fn main() {
    let cfg = GeneratorConfig::baseline(800, 7, 3);
    let workload = WorkloadGenerator::new(cfg).generate(&RngFactory::new(17_000));
    let users = &workload.population.users;
    let truth = true_user_shares(users);
    let design = SurveyDesign::realistic();

    // Average several survey draws (a real program surveys once; we report
    // the mean so the table isn't one lucky sample — per-draw numbers go to
    // the JSON via the l1 spread).
    let reps = 5;
    let mut naive = [0.0; Modality::ALL.len()];
    let mut weighted = [0.0; Modality::ALL.len()];
    let (mut invited, mut responded) = (0u64, 0u64);
    let (mut l1n, mut l1w) = (0.0, 0.0);
    for i in 0..reps {
        let mut rng = RngFactory::new(17_000).stream(StreamId::new("survey", i));
        let r = run_survey(users, &design, &mut rng);
        for (acc, v) in naive.iter_mut().zip(&r.naive_share) {
            *acc += v / reps as f64;
        }
        for (acc, v) in weighted.iter_mut().zip(&r.weighted_share) {
            *acc += v / reps as f64;
        }
        invited += r.invited / reps;
        responded += r.responded / reps;
        l1n += r.l1_error(&truth, false) / reps as f64;
        l1w += r.l1_error(&truth, true) / reps as f64;
    }

    let mut table = Table::new(
        "T5: user-share measurement — truth vs survey (realistic response model)",
        &["modality", "truth", "survey naive", "survey weighted"],
    );
    for m in Modality::ALL {
        let i = m.index();
        table.row(vec![
            m.name().into(),
            format!("{:.1}%", 100.0 * truth[i]),
            format!("{:.1}%", 100.0 * naive[i]),
            format!("{:.1}%", 100.0 * weighted[i]),
        ]);
    }
    println!("{table}");
    println!(
        "invited ≈ {invited}, responded ≈ {responded} ({:.0}% response)",
        100.0 * responded as f64 / invited.max(1) as f64
    );
    println!(
        "L1 share error: naive {:.3} → weighted {:.3} ({:.0}% of the bias repaired)",
        l1n,
        l1w,
        100.0 * (1.0 - l1w / l1n.max(1e-9))
    );
    let gw = Modality::ScienceGateway.index();
    println!(
        "gateway user share: truth {:.1}%, naive survey {:.1}%, weighted {:.1}%",
        100.0 * truth[gw],
        100.0 * naive[gw],
        100.0 * weighted[gw]
    );

    save_json(
        "exp_t5_survey",
        &T5Output {
            truth: truth.to_vec(),
            survey_naive: naive.to_vec(),
            survey_weighted: weighted.to_vec(),
            invited,
            responded,
            l1_naive: l1n,
            l1_weighted: l1w,
            replications: reps as usize,
        },
    );
}
