//! F3 — Queue wait by job-size class under FCFS vs EASY vs conservative
//! backfill, single site at high offered load.
//!
//! Expected shape: EASY ≤ conservative ≪ FCFS for small/short jobs; waits
//! for the largest class are similar across policies (backfilling helps the
//! narrow, not the wide).

use serde::Serialize;
use tg_bench::{
    calibrated_users, save_json, single_site_config, trace_scratch_path, wait_crosscheck, Table,
    WaitCrossCheck,
};
use tg_core::{replicate_with, Modality, RunOptions};
use tg_des::stats::exact_quantile;
use tg_sched::SchedulerKind;

const SIZE_CLASSES: [(usize, usize, &str); 4] = [
    (1, 8, "1-8"),
    (9, 64, "9-64"),
    (65, 512, "65-512"),
    (513, usize::MAX, ">512"),
];

#[derive(Serialize)]
struct SchedResult {
    scheduler: String,
    utilization: f64,
    mean_wait_s: Vec<f64>, // per size class
    p95_wait_s: Vec<f64>,
    mean_bounded_slowdown: f64,
    /// Span-analyzer reconstruction of replication 0's mean wait from its
    /// JSONL trace, vs the accounting database.
    trace_crosscheck: WaitCrossCheck,
}

#[derive(Serialize)]
struct F3Output {
    cores: usize,
    target_load: f64,
    days: u64,
    replications: usize,
    results: Vec<SchedResult>,
}

fn main() {
    let nodes = 256;
    let cpn = 8;
    let cores = nodes * cpn;
    let days = 21;
    let target_load = 0.8;
    let batch_profile = tg_workload::ModalityProfile::default_for(Modality::BatchComputing);
    let batch_users = calibrated_users(&batch_profile, cores, target_load * 0.85);
    let interactive_users = 20; // a small-short stream for backfill to chew on

    let mut results = Vec::new();
    for kind in [
        SchedulerKind::Fcfs,
        SchedulerKind::Easy,
        SchedulerKind::Conservative,
    ] {
        let cfg = single_site_config(
            "f3",
            nodes,
            cpn,
            0,
            0,
            days,
            &[
                (Modality::BatchComputing, batch_users),
                (Modality::Interactive, interactive_users),
            ],
            kind,
        );
        let trace_path = trace_scratch_path(&format!("exp_f3_{}", kind.name()));
        let opts = RunOptions {
            metrics: false,
            trace_path: Some(trace_path.clone()),
            ..RunOptions::default()
        };
        let reps = replicate_with(&cfg.build(), 5000, 3, 0, &opts);
        let xcheck = wait_crosscheck(&trace_path, &reps[0].output);
        let _ = std::fs::remove_file(&trace_path);
        assert!(
            xcheck.agrees_within(0.01),
            "{}: analyzer mean wait {:.3}s disagrees with accounting {:.3}s (rel {:.4})",
            kind.name(),
            xcheck.analyzer_mean_wait_s,
            xcheck.db_mean_wait_s,
            xcheck.rel_err
        );
        // Pool waits across replications per size class.
        let mut waits: Vec<Vec<f64>> = vec![Vec::new(); SIZE_CLASSES.len()];
        let mut slowdowns = Vec::new();
        let mut utils = Vec::new();
        for r in &reps {
            for j in &r.output.db.jobs {
                let class = SIZE_CLASSES
                    .iter()
                    .position(|&(lo, hi, _)| j.cores >= lo && j.cores <= hi)
                    .expect("class covers all sizes");
                waits[class].push(j.wait().as_secs_f64());
                slowdowns.push(j.bounded_slowdown());
            }
            utils.push(r.output.average_utilization());
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        let mut mean_wait = Vec::new();
        let mut p95_wait = Vec::new();
        for class in &mut waits {
            class.sort_by(|a, b| a.partial_cmp(b).unwrap());
            mean_wait.push(mean(class));
            p95_wait.push(exact_quantile(class, 0.95).unwrap_or(0.0));
        }
        results.push(SchedResult {
            scheduler: kind.name().to_string(),
            utilization: mean(&utils),
            mean_wait_s: mean_wait,
            p95_wait_s: p95_wait,
            mean_bounded_slowdown: mean(&slowdowns),
            trace_crosscheck: xcheck,
        });
    }

    let mut table = Table::new(
        format!("F3: mean queue wait (s) by job-size class, {cores} cores, load {target_load}"),
        &[
            "scheduler",
            "util",
            "1-8",
            "9-64",
            "65-512",
            ">512",
            "slowdown",
        ],
    );
    for r in &results {
        table.row(vec![
            r.scheduler.clone(),
            format!("{:.2}", r.utilization),
            format!("{:.0}", r.mean_wait_s[0]),
            format!("{:.0}", r.mean_wait_s[1]),
            format!("{:.0}", r.mean_wait_s[2]),
            format!("{:.0}", r.mean_wait_s[3]),
            format!("{:.1}", r.mean_bounded_slowdown),
        ]);
    }
    println!("{table}");

    let mut p95 = Table::new(
        "F3b: P95 queue wait (s) by job-size class",
        &["scheduler", "1-8", "9-64", "65-512", ">512"],
    );
    for r in &results {
        p95.row(vec![
            r.scheduler.clone(),
            format!("{:.0}", r.p95_wait_s[0]),
            format!("{:.0}", r.p95_wait_s[1]),
            format!("{:.0}", r.p95_wait_s[2]),
            format!("{:.0}", r.p95_wait_s[3]),
        ]);
    }
    println!("{p95}");

    for r in &results {
        println!(
            "trace cross-check [{}]: analyzer {:.1}s vs accounting {:.1}s (rel err {:.5})",
            r.scheduler,
            r.trace_crosscheck.analyzer_mean_wait_s,
            r.trace_crosscheck.db_mean_wait_s,
            r.trace_crosscheck.rel_err
        );
    }

    println!(
        "small-job speedup: FCFS {:.0}s → EASY {:.0}s ({:.1}×)",
        results[0].mean_wait_s[0],
        results[1].mean_wait_s[0],
        results[0].mean_wait_s[0] / results[1].mean_wait_s[0].max(1.0)
    );

    save_json(
        "exp_f3_wait_by_sched",
        &F3Output {
            cores,
            target_load,
            days,
            replications: 3,
            results,
        },
    );
}
