//! T1 — Modality taxonomy × measurement-mechanism matrix, plus measured
//! usage shares (accounts / jobs / NUs) per modality on the baseline
//! scenario.
//!
//! Expected shape: science gateways dominate *account* counts (well, user
//! counts — we also print the ground-truth population), batch computing
//! dominates *NUs*; shares sum to one.

use serde::Serialize;
use tg_bench::{save_json, Table};
use tg_core::report::UsageReport;
use tg_core::{
    aggregate_profiles, replicate_with, MetricsSnapshot, Modality, RunOptions, ScenarioConfig,
};
use tg_des::SimDuration;

#[derive(Serialize)]
struct T1Output {
    scenario: String,
    replications: usize,
    taxonomy: Vec<(String, String)>,
    accounts: Vec<u64>,
    population_users: Vec<usize>,
    jobs: Vec<u64>,
    nus: Vec<f64>,
    nu_share: Vec<f64>,
    job_share: Vec<f64>,
    metrics: Option<MetricsSnapshot>,
}

fn main() {
    let users = 500;
    let days = 45;
    let mut cfg = ScenarioConfig::baseline(users, days);
    cfg.sample_interval = Some(SimDuration::from_hours(6));
    let population = cfg.workload.mix.users_per_modality;
    let scenario = cfg.build();
    let reps = replicate_with(&scenario, 1000, 3, 0, &RunOptions::with_metrics());

    // Report on the first replication; use all for the share stability note.
    let out = &reps[0].output;
    let report = UsageReport::compute(&out.db, &out.truth, &out.charge_policy);

    let mut tax = Table::new(
        "T1a: usage-modality taxonomy and measurement mechanisms",
        &["modality", "measured by"],
    );
    for (name, mech) in &report.taxonomy {
        tax.row(vec![name.clone(), mech.clone()]);
    }
    println!("{tax}");

    let mut shares = Table::new(
        format!("T1b: usage shares, baseline ({users} users, {days} days, ground truth)"),
        &[
            "modality", "users", "accounts", "jobs", "NUs", "job%", "NU%",
        ],
    );
    let s = &report.shares;
    for m in Modality::ALL {
        let i = m.index();
        shares.row(vec![
            m.name().into(),
            population[i].to_string(),
            s.accounts[i].to_string(),
            s.jobs[i].to_string(),
            format!("{:.0}", s.nus[i]),
            format!("{:.1}%", 100.0 * s.job_share(m)),
            format!("{:.1}%", 100.0 * s.nu_share(m)),
        ]);
    }
    println!("{shares}");

    // Headline checks the text report asserts.
    let gw_users = population[Modality::ScienceGateway.index()];
    let batch_users = population[Modality::BatchComputing.index()];
    println!(
        "gateway users ({gw_users}) > batch users ({batch_users}): {}",
        gw_users > batch_users
    );
    println!(
        "batch NU share {:.1}% > gateway NU share {:.1}%: {}",
        100.0 * s.nu_share(Modality::BatchComputing),
        100.0 * s.nu_share(Modality::ScienceGateway),
        s.nu_share(Modality::BatchComputing) > s.nu_share(Modality::ScienceGateway)
    );
    println!(
        "gateway accounts collapse to {} community account(s) in records",
        s.accounts[Modality::ScienceGateway.index()]
    );

    // Cross-check the run-level metrics against the accounting database and
    // surface the engine profile for the batch.
    let snap = out.metrics.as_ref().expect("metrics requested");
    assert_eq!(
        snap.counter_sum("completed.site."),
        out.db.jobs.len() as u64
    );
    assert_eq!(
        snap.counter_sum("completed.modality."),
        out.db.jobs.len() as u64
    );
    let agg = aggregate_profiles(&reps);
    println!(
        "engine: {} events in {:.3}s wall ({:.0} events/s), peak queue {}",
        agg.events_delivered, agg.wall_seconds, agg.events_per_sec, agg.peak_queue_len
    );

    save_json(
        "exp_t1_modality_shares",
        &T1Output {
            scenario: out.scenario.clone(),
            replications: reps.len(),
            taxonomy: report.taxonomy.clone(),
            accounts: s.accounts.clone(),
            population_users: population.to_vec(),
            jobs: s.jobs.clone(),
            nus: s.nus.clone(),
            nu_share: Modality::ALL.iter().map(|&m| s.nu_share(m)).collect(),
            job_share: Modality::ALL.iter().map(|&m| s.job_share(m)).collect(),
            metrics: out.metrics.clone(),
        },
    );
}
