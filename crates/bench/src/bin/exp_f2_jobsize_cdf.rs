//! F2 — Job-size (core count) CDF per modality.
//!
//! Pure workload characterization (no queueing needed): generate the
//! baseline population's jobs and report per-modality core-count quantiles
//! and CDF points.
//!
//! Expected shape: interactive/gateway ≪ batch; the extreme tail (hero
//! runs) exists only in batch; ensemble members are narrow but arrive in
//! bulk.

use serde::Serialize;
use tg_bench::{save_json, Table};
use tg_core::Modality;
use tg_des::stats::exact_quantile;
use tg_des::RngFactory;
use tg_workload::{GeneratorConfig, WorkloadGenerator};

#[derive(Serialize)]
struct F2Output {
    quantiles: Vec<f64>,
    per_modality_cores: Vec<Vec<f64>>, // [modality][quantile]
    cdf_points: Vec<Vec<(f64, f64)>>,  // [modality][(cores, F)]
}

fn main() {
    let cfg = GeneratorConfig::baseline(600, 30, 3);
    let workload = WorkloadGenerator::new(cfg).generate(&RngFactory::new(4000));

    let qs = [0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0];
    let mut table = Table::new(
        "F2: job-size (cores) quantiles per modality",
        &[
            "modality", "jobs", "P10", "P25", "P50", "P75", "P90", "P99", "max",
        ],
    );
    let mut per_modality = Vec::new();
    let mut cdfs = Vec::new();
    for m in Modality::ALL {
        let mut cores: Vec<f64> = workload.jobs_of(m).map(|j| j.cores as f64).collect();
        cores.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let row_q: Vec<f64> = qs
            .iter()
            .map(|&q| exact_quantile(&cores, q).unwrap_or(0.0))
            .collect();
        let mut row = vec![m.name().to_string(), cores.len().to_string()];
        row.extend(row_q.iter().map(|v| format!("{v:.0}")));
        table.row(row);
        // Compact CDF: distinct core values with cumulative fraction.
        let mut cdf = Vec::new();
        let n = cores.len().max(1) as f64;
        let mut i = 0;
        while i < cores.len() {
            let v = cores[i];
            let mut k = i;
            while k < cores.len() && cores[k] == v {
                k += 1;
            }
            cdf.push((v, k as f64 / n));
            i = k;
        }
        per_modality.push(row_q);
        cdfs.push(cdf);
    }
    println!("{table}");

    let p99 = |m: Modality| per_modality[m.index()][5];
    println!(
        "tail check: batch P99 = {:.0} cores vs gateway P99 = {:.0}, interactive P99 = {:.0}",
        p99(Modality::BatchComputing),
        p99(Modality::ScienceGateway),
        p99(Modality::Interactive)
    );

    save_json(
        "exp_f2_jobsize_cdf",
        &F2Output {
            quantiles: qs.to_vec(),
            per_modality_cores: per_modality,
            cdf_points: cdfs,
        },
    );
}
