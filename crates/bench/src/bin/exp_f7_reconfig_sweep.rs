//! F7 — Deadline-task schedule success rate vs reconfiguration time.
//!
//! Every task carries a deadline. Reconfiguration time sweeps five orders
//! of magnitude; the library is injected so the sweep controls it exactly.
//! Success = completing by the deadline, whether on hardware or via the
//! software fallback.
//!
//! Expected shape: the RC-aware policy degrades gracefully — as setup grows
//! it shifts work to the software implementation (visible in the hw-share
//! column) and holds most deadlines. RC-blind keeps paying the setup, so
//! its success rate collapses once reconfiguration approaches the deadline
//! scale.

use serde::Serialize;
use std::collections::HashMap;
use tg_bench::{rc_only_config, rc_tasks_per_day_for_load, save_json, synthetic_library, Table};
use tg_core::{run_sweep, Modality};
use tg_des::{RngFactory, SimDuration};
use tg_sched::RcPolicy;
use tg_workload::{JobId, WorkloadGenerator};

#[derive(Serialize)]
struct F7Point {
    reconfig_ms: u64,
    policy: String,
    success_rate: f64,
    hw_fraction: f64,
    mean_turnaround_s: f64,
}

fn main() {
    let nodes = 16;
    let days = 2;
    let tasks_per_day = rc_tasks_per_day_for_load(nodes, 8, 0.4);
    let seed = 11_000u64;
    // The (reconfig, policy) grid cells are independent runs; sweep them
    // in parallel — each cell's workload and seed are its own.
    let grid: Vec<(u64, RcPolicy)> = [1u64, 100, 1_000, 10_000, 30_000, 100_000]
        .into_iter()
        .flat_map(|ms| [(ms, RcPolicy::AWARE), (ms, RcPolicy::BLIND)])
        .collect();
    let points: Vec<F7Point> = run_sweep(&grid, 0, |_, &(reconfig_ms, policy)| {
        {
            let mut cfg = rc_only_config(nodes, 8, tasks_per_day, days, 12);
            cfg.rc_policy = policy;
            cfg.library = Some(synthetic_library(
                12,
                SimDuration::from_millis(reconfig_ms),
                1.0,
            ));
            // Every task gets a deadline.
            cfg.workload
                .profile_mut(Modality::RcAccelerated)
                .rc
                .as_mut()
                .expect("rc profile")
                .deadline_fraction = 1.0;
            cfg.name = format!("f7-{reconfig_ms}ms-{}", policy.name());

            // Deadlines live in the workload, not in accounting records:
            // regenerate the same workload to recover them.
            let deadline_of: HashMap<JobId, SimDuration> = {
                let w =
                    WorkloadGenerator::new(cfg.workload.clone()).generate(&RngFactory::new(seed));
                w.jobs
                    .iter()
                    .filter_map(|j| j.rc.and_then(|rc| rc.deadline).map(|d| (j.id, d)))
                    .collect()
            };

            let out = cfg.build().run(seed);
            let mut met = 0u64;
            let mut total = 0u64;
            let mut hw = 0u64;
            let mut turn = 0.0;
            for j in &out.db.jobs {
                total += 1;
                turn += j.end.saturating_since(j.submit).as_secs_f64();
                if j.used_hw {
                    hw += 1;
                }
                let d = deadline_of
                    .get(&j.job)
                    .copied()
                    .expect("all tasks have deadlines");
                if j.end <= j.submit + d {
                    met += 1;
                }
            }
            F7Point {
                reconfig_ms,
                policy: policy.name().to_string(),
                success_rate: met as f64 / total.max(1) as f64,
                hw_fraction: hw as f64 / total.max(1) as f64,
                mean_turnaround_s: turn / total.max(1) as f64,
            }
        }
    });

    let mut table = Table::new(
        "F7: deadline success vs reconfiguration time",
        &["reconfig", "policy", "success", "hw share", "turnaround"],
    );
    for p in &points {
        table.row(vec![
            if p.reconfig_ms >= 1000 {
                format!("{}s", p.reconfig_ms / 1000)
            } else {
                format!("{}ms", p.reconfig_ms)
            },
            p.policy.clone(),
            format!("{:.1}%", 100.0 * p.success_rate),
            format!("{:.0}%", 100.0 * p.hw_fraction),
            format!("{:.0}s", p.mean_turnaround_s),
        ]);
    }
    println!("{table}");

    let at = |ms: u64, pol: &str| {
        points
            .iter()
            .find(|p| p.reconfig_ms == ms && p.policy == pol)
            .expect("present")
    };
    println!(
        "at 100 s reconfig: aware {:.1}% success (hw {:.0}%) vs blind {:.1}% (hw {:.0}%)",
        100.0 * at(100_000, "rc-aware").success_rate,
        100.0 * at(100_000, "rc-aware").hw_fraction,
        100.0 * at(100_000, "rc-blind").success_rate,
        100.0 * at(100_000, "rc-blind").hw_fraction,
    );
    println!(
        "aware holds turnaround nearly flat ({:.0}s → {:.0}s) by reusing configurations; \
         blind pays the pipeline every miss ({:.0}s → {:.0}s)",
        at(1, "rc-aware").mean_turnaround_s,
        at(100_000, "rc-aware").mean_turnaround_s,
        at(1, "rc-blind").mean_turnaround_s,
        at(100_000, "rc-blind").mean_turnaround_s,
    );

    save_json("exp_f7_reconfig_sweep", &points);
}
