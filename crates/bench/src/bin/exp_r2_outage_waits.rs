//! R2 — Queue-wait and utilization damage from site outages, per scheduler.
//!
//! The F3 single-site testbed (high offered load, batch + interactive mix)
//! rerun under a fault schedule: a 12-hour announced outage on day 4 (two
//! hours of drain notice) and an unannounced 6-hour outage on day 10.
//! Killed work requeues with exponential backoff. For FCFS, EASY, and
//! conservative backfill the binary reports healthy vs faulted mean/P95
//! wait and utilization, plus the kill/requeue counts from the
//! `FaultReport` — the per-scheduler deltas are the deliverable.
//!
//! Expected shape: waits climb under faults for every scheduler, with the
//! backfilling schedulers absorbing the post-outage backlog burst better
//! than FCFS at P95. Measured *utilization* ticks up slightly: killed jobs
//! rerun from scratch, so the lost partial executions and the reruns both
//! count as busy time — wasted work masquerades as load, which is itself a
//! finding about reading utilization dashboards during incident recovery.

use serde::Serialize;
use tg_bench::{calibrated_users, save_json, single_site_config, Table};
use tg_core::{replicate_with, FaultSpec, Modality, OutageWindow, RunOptions, ScenarioConfig};
use tg_des::stats::exact_quantile;
use tg_sched::SchedulerKind;

const DAYS: u64 = 21;
const REPS: usize = 3;

#[derive(Serialize)]
struct Condition {
    faulted: bool,
    mean_wait_s: f64,
    p95_wait_s: f64,
    utilization: f64,
    jobs_recorded: usize,
    jobs_killed: u64,
    jobs_requeued: u64,
    jobs_abandoned: u64,
}

#[derive(Serialize)]
struct SchedResult {
    scheduler: String,
    healthy: Condition,
    faulted: Condition,
    mean_wait_delta_s: f64,
    p95_wait_delta_s: f64,
    utilization_delta: f64,
}

#[derive(Serialize)]
struct R2Output {
    cores: usize,
    days: u64,
    replications: usize,
    outages: Vec<OutageWindow>,
    results: Vec<SchedResult>,
}

fn outage_spec() -> FaultSpec {
    FaultSpec {
        site_outages: vec![
            OutageWindow {
                site: 0,
                start_hours: 96.0,
                duration_hours: 12.0,
                notice_hours: 2.0,
            },
            OutageWindow {
                site: 0,
                start_hours: 240.0,
                duration_hours: 6.0,
                notice_hours: 0.0,
            },
        ],
        ..FaultSpec::default()
    }
}

fn measure(cfg: &ScenarioConfig, faulted: bool) -> Condition {
    let reps = replicate_with(&cfg.clone().build(), 5000, REPS, 0, &RunOptions::default());
    let mut waits = Vec::new();
    let mut utils = Vec::new();
    let mut jobs = 0usize;
    let (mut killed, mut requeued, mut abandoned) = (0u64, 0u64, 0u64);
    for r in &reps {
        for j in &r.output.db.jobs {
            waits.push(j.wait().as_secs_f64());
        }
        jobs += r.output.db.jobs.len();
        utils.push(r.output.average_utilization());
        if let Some(fr) = &r.output.fault_report {
            killed += fr.jobs_killed;
            requeued += fr.jobs_requeued;
            abandoned += fr.jobs_abandoned;
        }
    }
    waits.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / (v.len() as f64).max(1.0);
    Condition {
        faulted,
        mean_wait_s: mean(&waits),
        p95_wait_s: exact_quantile(&waits, 0.95).unwrap_or(0.0),
        utilization: mean(&utils),
        jobs_recorded: jobs,
        jobs_killed: killed,
        jobs_requeued: requeued,
        jobs_abandoned: abandoned,
    }
}

fn main() {
    let nodes = 256;
    let cpn = 8;
    let cores = nodes * cpn;
    let target_load = 0.8;
    let batch_profile = tg_workload::ModalityProfile::default_for(Modality::BatchComputing);
    let batch_users = calibrated_users(&batch_profile, cores, target_load * 0.85);
    let interactive_users = 20;

    let mut results = Vec::new();
    for kind in [
        SchedulerKind::Fcfs,
        SchedulerKind::Easy,
        SchedulerKind::Conservative,
    ] {
        let cfg = single_site_config(
            "r2",
            nodes,
            cpn,
            0,
            0,
            DAYS,
            &[
                (Modality::BatchComputing, batch_users),
                (Modality::Interactive, interactive_users),
            ],
            kind,
        );
        let healthy = measure(&cfg, false);
        let mut faulted_cfg = cfg;
        faulted_cfg.faults = Some(outage_spec());
        let faulted = measure(&faulted_cfg, true);
        assert!(
            faulted.jobs_killed + faulted.jobs_requeued > 0,
            "{}: the outage schedule must actually kill running work",
            kind.name()
        );
        results.push(SchedResult {
            scheduler: kind.name().to_string(),
            mean_wait_delta_s: faulted.mean_wait_s - healthy.mean_wait_s,
            p95_wait_delta_s: faulted.p95_wait_s - healthy.p95_wait_s,
            utilization_delta: faulted.utilization - healthy.utilization,
            healthy,
            faulted,
        });
    }

    let mut table = Table::new(
        format!("R2: outage damage per scheduler, {cores} cores, load {target_load}, {DAYS}d"),
        &[
            "scheduler",
            "wait(ok)",
            "wait(fault)",
            "p95(ok)",
            "p95(fault)",
            "util(ok)",
            "util(fault)",
            "killed",
        ],
    );
    for r in &results {
        table.row(vec![
            r.scheduler.clone(),
            format!("{:.0}s", r.healthy.mean_wait_s),
            format!("{:.0}s", r.faulted.mean_wait_s),
            format!("{:.0}s", r.healthy.p95_wait_s),
            format!("{:.0}s", r.faulted.p95_wait_s),
            format!("{:.3}", r.healthy.utilization),
            format!("{:.3}", r.faulted.utilization),
            format!("{}", r.faulted.jobs_killed),
        ]);
    }
    println!("{table}");

    for r in &results {
        println!(
            "{:<14} Δmean {:+.0}s  Δp95 {:+.0}s  Δutil {:+.4}  ({} killed, {} requeued, {} abandoned over {REPS} reps)",
            r.scheduler,
            r.mean_wait_delta_s,
            r.p95_wait_delta_s,
            r.utilization_delta,
            r.faulted.jobs_killed,
            r.faulted.jobs_requeued,
            r.faulted.jobs_abandoned,
        );
    }

    save_json(
        "exp_r2_outage_waits",
        &R2Output {
            cores,
            days: DAYS,
            replications: REPS,
            outages: outage_spec().site_outages,
            results,
        },
    );
}
