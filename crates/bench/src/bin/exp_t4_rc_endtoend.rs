//! T4 — End-to-end mixed workload on a hybrid federation:
//! RC-aware vs RC-blind vs GPP-only.
//!
//! The RC site carries a batch/interactive background plus a heavy stream
//! of hardware-accelerable tasks. GPP-only removes the fabric entirely, so
//! accelerable tasks run as software jobs through the batch queue.
//!
//! Expected shape: on RC-task turnaround, aware < blind ≪ GPP-only. The
//! aware-vs-blind gap is the setup pipeline paid on every non-reused
//! placement; the vs-GPP gap is the kernel speedup itself (plus queueing
//! once the software pool saturates).

use serde::Serialize;
use tg_bench::{rc_only_config, rc_tasks_per_day_for_load, save_json, synthetic_library, Table};
use tg_core::{replicate, Modality};
use tg_des::SimDuration;
use tg_sched::RcPolicy;

#[derive(Serialize)]
struct T4Result {
    variant: String,
    rc_mean_turnaround_s: f64,
    ci: f64,
    rc_throughput_per_hour: f64,
    hw_fraction: f64,
    reuse_fraction: f64,
    batch_mean_wait_s: f64,
}

fn main() {
    let days = 2;
    let tasks_per_day = rc_tasks_per_day_for_load(32, 8, 0.5);
    let variants: [(&str, usize, RcPolicy); 3] = [
        ("rc-aware", 32, RcPolicy::AWARE),
        ("rc-blind", 32, RcPolicy::BLIND),
        ("gpp-only", 0, RcPolicy::AWARE),
    ];
    let mut results = Vec::new();
    for (name, rc_nodes, policy) in variants {
        let mut cfg = rc_only_config(rc_nodes.max(1), 8, tasks_per_day, days, 12);
        // gpp-only: strip the fabric but keep the workload identical.
        cfg.sites[1].rc_nodes = rc_nodes;
        cfg.rc_policy = policy;
        cfg.library = Some(synthetic_library(12, SimDuration::from_secs(15), 1.0));
        // A light conventional background on the same machines.
        cfg.workload.mix.users_per_modality[Modality::BatchComputing.index()] = 6;
        cfg.workload.mix.users_per_modality[Modality::Interactive.index()] = 15;
        {
            let p = cfg.workload.profile_mut(Modality::BatchComputing);
            p.cores_weights = vec![(8, 40.0), (16, 30.0), (32, 20.0), (64, 10.0)];
        }
        cfg.name = format!("t4-{name}");
        let reps = replicate(&cfg.build(), 12_000, 3, 0);
        let mut turns = Vec::new();
        let mut thru = Vec::new();
        let mut hw = Vec::new();
        let mut reuse = Vec::new();
        let mut batch_wait = Vec::new();
        for r in &reps {
            let out = &r.output;
            let rc_jobs: Vec<_> = out
                .db
                .jobs
                .iter()
                .filter(|j| out.truth_of(j.job) == Some(Modality::RcAccelerated))
                .collect();
            let n = rc_jobs.len().max(1) as f64;
            turns.push(
                rc_jobs
                    .iter()
                    .map(|j| j.end.saturating_since(j.submit).as_secs_f64())
                    .sum::<f64>()
                    / n,
            );
            thru.push(n / out.end.as_hours_f64());
            hw.push(rc_jobs.iter().filter(|j| j.used_hw).count() as f64 / n);
            let stats = out.site_stats[1].rc_stats;
            let placements = (stats.reuses + stats.reconfigs).max(1);
            reuse.push(stats.reuses as f64 / placements as f64);
            let batch_jobs: Vec<_> = out
                .db
                .jobs
                .iter()
                .filter(|j| out.truth_of(j.job) == Some(Modality::BatchComputing))
                .collect();
            batch_wait.push(
                batch_jobs
                    .iter()
                    .map(|j| j.wait().as_secs_f64())
                    .sum::<f64>()
                    / batch_jobs.len().max(1) as f64,
            );
        }
        let (mean_turn, ci) = tg_des::stats::ci_student_t(&turns);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        results.push(T4Result {
            variant: name.to_string(),
            rc_mean_turnaround_s: mean_turn,
            ci,
            rc_throughput_per_hour: mean(&thru),
            hw_fraction: mean(&hw),
            reuse_fraction: mean(&reuse),
            batch_mean_wait_s: mean(&batch_wait),
        });
    }

    let mut table = Table::new(
        format!(
            "T4: hybrid-site mixed workload (32 RC nodes, {tasks_per_day:.0} accelerable tasks/day)"
        ),
        &[
            "variant",
            "rc turnaround",
            "rc/hour",
            "hw%",
            "reuse%",
            "batch wait",
        ],
    );
    for r in &results {
        table.row(vec![
            r.variant.clone(),
            format!("{:.0}s ± {:.0}", r.rc_mean_turnaround_s, r.ci),
            format!("{:.0}", r.rc_throughput_per_hour),
            format!("{:.0}%", 100.0 * r.hw_fraction),
            format!("{:.0}%", 100.0 * r.reuse_fraction),
            format!("{:.0}s", r.batch_mean_wait_s),
        ]);
    }
    println!("{table}");

    let by = |name: &str| results.iter().find(|r| r.variant == name).expect("present");
    println!(
        "turnaround: aware {:.0}s ≤ blind {:.0}s ≤ gpp-only {:.0}s; aware is {:.1}× faster than gpp-only",
        by("rc-aware").rc_mean_turnaround_s,
        by("rc-blind").rc_mean_turnaround_s,
        by("gpp-only").rc_mean_turnaround_s,
        by("gpp-only").rc_mean_turnaround_s / by("rc-aware").rc_mean_turnaround_s.max(1.0),
    );

    save_json("exp_t4_rc_endtoend", &results);
}
