//! F8 — Utilization under the weekly-drain capability policy, with
//! full-machine "hero" jobs in the mix.
//!
//! Hero jobs arise naturally: the batch profile's 4096-core class clamps to
//! the 2048-core machine, i.e. full-machine runs. Three policies:
//!
//! * **naive-drain** — the machine idles toward each armed drain (what
//!   production scheduling effectively did around ad-hoc full-machine
//!   reservations, where kill-at-estimate walls blocked backfill);
//! * **weekly-drain** — the published policy: forced weekly clear-out with
//!   estimate-bounded filling up to the wall, heroes back-to-back;
//! * **easy** — an *idealized* upper bound: our estimates are true upper
//!   bounds on runtime (no kill risk), so EASY fills per-hero drain ramps
//!   nearly perfectly. Production backfill had no such guarantee.
//!
//! Expected shape: weekly-drain recovers most of the utilization the naive
//! drain burns (the published several-hundred-Teraflop-equivalent gain),
//! approaching the idealized-EASY bound, at the price of hero waits bounded
//! by the week.

use serde::Serialize;
use tg_bench::{calibrated_users, save_json, single_site_config, Table};
use tg_core::{replicate, Modality};
use tg_sched::SchedulerKind;
use tg_workload::ModalityProfile;

#[derive(Serialize)]
struct F8Result {
    scheduler: String,
    utilization: f64,
    ci: f64,
    hero_count: f64,
    hero_mean_wait_h: f64,
    normal_mean_wait_s: f64,
}

fn main() {
    let nodes = 256; // × 8 = 2048 cores; the 4096-class clamps to full machine
    let cores = nodes * 8;
    let days = 42;
    // A capability-machine profile: a substantial hero class (the machine
    // exists for full-machine runs) and production-realistic gross runtime
    // overestimates (2–8×) — the combination that makes per-hero draining
    // expensive for backfill.
    let mut capability_profile = ModalityProfile::default_for(Modality::BatchComputing);
    capability_profile.cores_weights = vec![
        (16, 18.0),
        (32, 18.0),
        (64, 16.0),
        (128, 14.0),
        (256, 11.0),
        (512, 7.0),
        (1024, 4.0),
        (4096, 12.0), // hero class: clamps to the full 2048-core machine
    ];
    capability_profile.estimate_factor = tg_des::dist::DistKind::Uniform { lo: 2.0, hi: 8.0 };
    let users = calibrated_users(&capability_profile, cores, 0.8);
    let hero_threshold = (cores as f64 * 0.9) as usize;

    let mut results = Vec::new();
    for kind in [
        SchedulerKind::NaiveDrain,
        SchedulerKind::WeeklyDrain,
        SchedulerKind::Easy,
    ] {
        let mut cfg = single_site_config(
            "f8",
            nodes,
            8,
            0,
            0,
            days,
            &[(Modality::BatchComputing, users)],
            kind,
        );
        *cfg.workload.profile_mut(Modality::BatchComputing) = capability_profile.clone();
        let reps = replicate(&cfg.build(), 13_000, 5, 0);
        let mut utils = Vec::new();
        let mut hero_counts = Vec::new();
        let mut hero_waits = Vec::new();
        let mut normal_waits = Vec::new();
        for r in &reps {
            utils.push(r.output.average_utilization());
            let heroes: Vec<_> = r
                .output
                .db
                .jobs
                .iter()
                .filter(|j| j.cores >= hero_threshold)
                .collect();
            hero_counts.push(heroes.len() as f64);
            if !heroes.is_empty() {
                hero_waits.push(
                    heroes.iter().map(|j| j.wait().as_hours_f64()).sum::<f64>()
                        / heroes.len() as f64,
                );
            }
            let normal: Vec<_> = r
                .output
                .db
                .jobs
                .iter()
                .filter(|j| j.cores < hero_threshold)
                .collect();
            normal_waits.push(
                normal.iter().map(|j| j.wait().as_secs_f64()).sum::<f64>()
                    / normal.len().max(1) as f64,
            );
        }
        let (util, ci) = tg_des::stats::ci_student_t(&utils);
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        results.push(F8Result {
            scheduler: kind.name().to_string(),
            utilization: util,
            ci,
            hero_count: mean(&hero_counts),
            hero_mean_wait_h: mean(&hero_waits),
            normal_mean_wait_s: mean(&normal_waits),
        });
    }

    let mut table = Table::new(
        format!("F8: weekly drain vs EASY with hero jobs ({cores} cores, {days} days)"),
        &[
            "scheduler",
            "utilization",
            "heroes",
            "hero wait (h)",
            "normal wait (s)",
        ],
    );
    for r in &results {
        table.row(vec![
            r.scheduler.clone(),
            format!("{:.3} ± {:.3}", r.utilization, r.ci),
            format!("{:.1}", r.hero_count),
            format!("{:.1}", r.hero_mean_wait_h),
            format!("{:.0}", r.normal_mean_wait_s),
        ]);
    }
    println!("{table}");

    let naive = &results[0];
    let drain = &results[1];
    let easy = &results[2];
    println!(
        "utilization: weekly-drain {:.3} vs naive draining {:.3} (gain {:+.1} points ≙ {:.0} extra cores busy)",
        drain.utilization,
        naive.utilization,
        100.0 * (drain.utilization - naive.utilization),
        (drain.utilization - naive.utilization) * cores as f64,
    );
    println!(
        "idealized EASY bound: {:.3} (perfect upper-bound estimates; see experiment docs)",
        easy.utilization
    );

    save_json("exp_f8_weekly_drain", &results);
}
