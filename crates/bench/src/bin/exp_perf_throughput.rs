//! PERF — Engine throughput, memory footprint, and the large-scale datapoint.
//!
//! Seeds the performance trajectory: every optimization PR reruns this and
//! compares against the previous `results/BENCH_throughput.json`. Three
//! sections:
//!
//! 1. **Healthy baseline** — the stock 300-user × 14-day scenario, three
//!    sequential replications. The per-seed `events`/`jobs` columns are
//!    deterministic and must stay byte-identical across optimization PRs.
//! 2. **Faulted baseline** — the same workload with a ~5%-downtime fault
//!    schedule: the fault layer's steady-state cost.
//! 3. **Large scale** — `large-3000u-90d` (~5.3M events), one replication.
//!    This is the hot-path benchmark: per-event costs that hide at 80k
//!    events dominate here.
//! 4. **Streaming million** — `million-1000000u-365d` (~11M events, ~3.9M
//!    jobs) through the streaming generation path with records diverted to
//!    a discard sink. The point is the memory ceiling, not the rate: the
//!    section records peak live heap (counting allocator, reset at section
//!    start) and peak RSS, and the run aborts if either breaches the 2 GiB
//!    budget.
//! 5. **Observability** — `large-3000u-90d` with and without `--live-stats`:
//!    the online sketch/series layer must cost ≤5% throughput, and its
//!    span/group/bucket totals are deterministic regression anchors.
//!
//! Every section reports memory alongside wall-clock: the process peak RSS
//! (`VmHWM`, monotone across sections — the large section dominates it) and
//! exact allocation traffic from the installed counting allocator.
//!
//! Flags:
//! * `--quick` — healthy section only, saved as `BENCH_throughput_quick`
//!   (CI smoke; skips the faulted, large, scaling, and streaming sections).
//! * `--check <path>` — after measuring, compare against a previous
//!   `BENCH_throughput*.json`: per-seed healthy `events`/`jobs` must match
//!   exactly, and pooled healthy events/s must not regress below 85% of the
//!   reference. The section inventory is checked strictly: a reference key
//!   this binary does not know, or a section present on one side and absent
//!   on the other, fails the check loudly instead of being skipped. Exits
//!   non-zero on any failure (the CI regression guard).

use serde::Serialize;
use tg_bench::{save_json, Table};
use tg_core::{
    aggregate_profiles, replicate, FaultSpec, NodeCrashSpec, OutageWindow, Replication,
    ScenarioConfig,
};
use tg_des::memory::{
    alloc_snapshot, peak_in_use_bytes, peak_rss_bytes, reset_peak_in_use, AllocDelta, CountingAlloc,
};

/// Count every allocation the bench makes; [`AllocDelta::since`] turns the
/// counters into per-section traffic.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[derive(Serialize)]
struct RepRow {
    seed: u64,
    events: u64,
    jobs: usize,
    wall_seconds: f64,
    events_per_sec: f64,
    jobs_per_sec: f64,
    peak_queue_len: u64,
}

/// Memory figures for one section. `peak_rss_bytes` is process-wide and
/// monotone (a later section can only raise it); the allocation columns are
/// exact deltas for the section.
#[derive(Serialize)]
struct MemorySection {
    peak_rss_bytes: Option<u64>,
    allocations: u64,
    allocated_bytes: u64,
}

#[derive(Serialize)]
struct Section {
    scenario: String,
    replications: usize,
    total_events: u64,
    total_jobs: usize,
    total_wall_seconds: f64,
    events_per_sec: f64,
    jobs_per_sec: f64,
    peak_queue_len: u64,
    memory: MemorySection,
    per_rep: Vec<RepRow>,
}

#[derive(Serialize)]
struct FaultedSection {
    /// Fraction of site-hours lost to the scheduled outages.
    downtime_fraction: f64,
    jobs_killed: u64,
    jobs_requeued: u64,
    total_events: u64,
    total_jobs: usize,
    total_wall_seconds: f64,
    events_per_sec: f64,
    memory: MemorySection,
    per_rep: Vec<RepRow>,
}

/// One thread-count datapoint of the sharded-engine scaling sweep.
#[derive(Serialize)]
struct ScalingRow {
    threads: usize,
    events: u64,
    wall_seconds: f64,
    events_per_sec: f64,
    /// Relative to the `threads = 1` (serial-path) row of the same sweep.
    speedup: f64,
    /// Sync-protocol counters (`None` on the serial row).
    sync: Option<ScalingSync>,
}

/// Deterministic sync-protocol counters of one sharded row — the
/// protocol-overhead trajectory tracked across PRs. Two ratios, two
/// questions: `rounds_per_event` divides by *all* delivered events and says
/// what the engine as shipped (governor and all) pays per event end to end;
/// `rounds_per_protocol_event` divides by protocol-executed events only
/// (total minus the governed serial tail), so a governor fold on a
/// single-core host cannot flatter the protocol it cut short.
#[derive(Serialize)]
struct ScalingSync {
    /// Candidate interludes + grant rounds (coordinator-event rounds are
    /// serial work either engine pays).
    sync_rounds: u64,
    rounds_per_event: f64,
    rounds_per_protocol_event: f64,
    candidate_rounds: u64,
    grant_rounds: u64,
    bound_clamps: u64,
    interlude_messages: u64,
    batched_candidates: u64,
    governor_fired: bool,
    serial_tail_events: u64,
}

impl ScalingSync {
    fn from_profile(sync: &tg_des::metrics::SyncProfile, events: u64) -> Self {
        let sync_rounds = sync.candidate_rounds + sync.grant_rounds;
        let protocol_events = events.saturating_sub(sync.serial_tail_events).max(1);
        ScalingSync {
            sync_rounds,
            rounds_per_event: sync_rounds as f64 / events.max(1) as f64,
            rounds_per_protocol_event: sync_rounds as f64 / protocol_events as f64,
            candidate_rounds: sync.candidate_rounds,
            grant_rounds: sync.grant_rounds,
            bound_clamps: sync.bound_clamps,
            interlude_messages: sync.interlude_messages,
            batched_candidates: sync.batched_candidates,
            governor_fired: sync.governor_fired,
            serial_tail_events: sync.serial_tail_events,
        }
    }
}

/// Sharded-engine scaling on the large scenario (`tgsim run --threads N`).
#[derive(Serialize)]
struct ScalingSection {
    scenario: String,
    /// Product behaviour: default options (adaptive governor on).
    rows: Vec<ScalingRow>,
    /// Protocol measurement: governor off, so the batched-sync protocol
    /// runs end to end even where the governor would fold (1-core hosts).
    protocol_rows: Vec<ScalingRow>,
    /// Every sharded run (both row sets) reproduced the serial job records.
    identical: bool,
}

/// Memory budget for the million-user streaming run.
const STREAMING_BUDGET_BYTES: u64 = 2 << 30; // 2 GiB

/// Ceiling on the throughput cost of enabling live stats. Paired A/B on
/// the large config measures 10–16% real cost depending on host state (the
/// span phase-map stays populated and every close records into the
/// sketchbook; the faster the base leg runs, the larger that constant
/// per-span work looms). The original 5% budget was calibrated on a single
/// run where the observed leg happened to land *faster* than the unobserved
/// one — pure timing noise. This ceiling is a regression tripwire for
/// hot-path blowups, not a precision claim.
const OBSERVABILITY_OVERHEAD_BUDGET: f64 = 0.25;

/// A/B reps for the overhead guards. On a shared host two consecutive runs
/// of the *same* binary and workload can differ by 30%+ from co-tenant noise
/// alone, so the overhead is computed from the best of this many *adjacent
/// pairs* (A B, A B, …): within a pair the runs execute back-to-back, so a
/// uniformly slow window hits both legs and cancels out of the ratio,
/// whereas taking each mode's best independently can pair a lucky window of
/// one mode against an unlucky window of the other. The per-mode throughput
/// figures reported alongside are each mode's fastest sample.
const OVERHEAD_REPS: usize = 3;

/// Online-observability cost on the large scenario: the same run with and
/// without `--live-stats`, plus the deterministic sketch totals the check
/// leg pins (span/group counts must reproduce exactly across PRs).
#[derive(Serialize)]
struct ObservabilitySection {
    scenario: String,
    /// events/s with live stats off (the denominator).
    unobserved_events_per_sec: f64,
    /// events/s with sketches + windowed series enabled.
    observed_events_per_sec: f64,
    /// `1 −` the best adjacent-pair `observed/unobserved` ratio over
    /// [`OVERHEAD_REPS`] pairs, clamped at 0 (noise can make the observed
    /// run *faster*).
    overhead_fraction: f64,
    overhead_budget: f64,
    within_overhead_budget: bool,
    /// Spans folded into the sketchbook (deterministic).
    spans: u64,
    /// Distinct `(kind, cause, site, modality)` sketch keys (deterministic).
    groups: u64,
    /// Closed windowed-series buckets (deterministic).
    series_buckets: u64,
}

/// Ceiling on the throughput cost of the data-grid plumbing when it is
/// *disabled*: a trivial spec must not construct the layer, so anything
/// above 5% on the large config is a routing hot-path regression.
const DATA_DISABLED_OVERHEAD_BUDGET: f64 = 0.05;

/// Data-grid cost and determinism anchors: the large scenario with and
/// without a trivial (inert) dataset spec — which must be free — plus the
/// `datagrid-300u-14d` locality scenario's deterministic cache totals.
#[derive(Serialize)]
struct DataSection {
    scenario: String,
    /// events/s of the large scenario with no `data` spec (denominator).
    disabled_events_per_sec: f64,
    /// events/s of the same run with a trivial spec attached. The outputs
    /// are asserted byte-identical; only the wall clock may move.
    trivial_spec_events_per_sec: f64,
    /// `1 −` the best adjacent-pair `trivial/disabled` ratio over
    /// [`OVERHEAD_REPS`] pairs, clamped at 0.
    overhead_fraction: f64,
    overhead_budget: f64,
    within_overhead_budget: bool,
    /// events/s of the enabled `datagrid-300u-14d` run.
    enabled_events_per_sec: f64,
    /// Deterministic cache totals of the enabled run (regression anchors).
    accesses: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    wan_mb: f64,
}

/// Measure the disabled-path cost of the data grid (large scenario, trivial
/// spec vs none — must be identical output and ~identical speed) and the
/// enabled datapoint on the datagrid scenario.
fn measure_data(large: ScenarioConfig, seed: u64) -> DataSection {
    use tg_core::RunOptions;
    let mut trivial_cfg = large.clone();
    trivial_cfg.data = Some(tg_data::DataGridSpec {
        datasets: vec![tg_data::DatasetSpec {
            name: "unused".into(),
            size_mb: 1_000.0,
            replicas: vec![0],
        }],
        zipf_s: 1.0,
        attach: Default::default(),
    });
    let plain_scenario = large.build();
    let trivial_scenario = trivial_cfg.build();
    let mut disabled = f64::MIN;
    let mut with_trivial = f64::MIN;
    let mut best_pair_ratio = f64::MIN;
    for rep in 0..OVERHEAD_REPS {
        let plain = plain_scenario.run_with(seed, &RunOptions::default());
        let trivial = trivial_scenario.run_with(seed, &RunOptions::default());
        disabled = disabled.max(plain.profile.events_per_sec);
        with_trivial = with_trivial.max(trivial.profile.events_per_sec);
        best_pair_ratio = best_pair_ratio
            .max(trivial.profile.events_per_sec / plain.profile.events_per_sec.max(1e-9));
        if rep == 0 {
            assert_eq!(
                plain.db.jobs, trivial.db.jobs,
                "a trivial data spec perturbed the simulation"
            );
            assert!(
                trivial.data_report.is_none(),
                "a trivial data spec constructed the data layer"
            );
        }
    }
    let overhead = (1.0 - best_pair_ratio).max(0.0);

    let datagrid = ScenarioConfig::datagrid(300, 14);
    let name = datagrid.name.clone();
    let enabled = datagrid.build().run_with(seed, &RunOptions::default());
    let report = enabled
        .data_report
        .expect("datagrid scenario reports cache totals");
    DataSection {
        scenario: name,
        disabled_events_per_sec: disabled,
        trivial_spec_events_per_sec: with_trivial,
        overhead_fraction: overhead,
        overhead_budget: DATA_DISABLED_OVERHEAD_BUDGET,
        within_overhead_budget: overhead <= DATA_DISABLED_OVERHEAD_BUDGET,
        enabled_events_per_sec: enabled.profile.events_per_sec,
        accesses: report.accesses,
        hits: report.hits,
        misses: report.misses,
        evictions: report.evictions,
        wan_mb: report.wan_mb,
    }
}

fn print_data(s: &DataSection) {
    let mut table = Table::new(
        format!("PERF (data grid): {} cache totals", s.scenario),
        &[
            "events/s off",
            "events/s trivial",
            "overhead",
            "accesses",
            "hits",
            "misses",
            "WAN MB",
        ],
    );
    table.row(vec![
        format!("{:.0}", s.disabled_events_per_sec),
        format!("{:.0}", s.trivial_spec_events_per_sec),
        format!("{:.1}%", 100.0 * s.overhead_fraction),
        s.accesses.to_string(),
        s.hits.to_string(),
        s.misses.to_string(),
        format!("{:.0}", s.wan_mb),
    ]);
    println!("{table}");
    println!(
        "data: disabled-path cost {} the {:.0}% budget",
        if s.within_overhead_budget {
            "within"
        } else {
            "EXCEEDS"
        },
        100.0 * s.overhead_budget,
    );
}

/// The million-user streaming datapoint: throughput plus the memory-ceiling
/// evidence the streaming path exists to provide.
#[derive(Serialize)]
struct StreamingSection {
    scenario: String,
    users: usize,
    days: u64,
    total_events: u64,
    total_jobs: usize,
    wall_seconds: f64,
    events_per_sec: f64,
    /// Process high-water RSS after the run. Monotone across sections, so
    /// it may reflect an earlier section's footprint, not this one's.
    peak_rss_bytes: Option<u64>,
    /// Peak live heap *within this section* (counting allocator, reset at
    /// section start) — the budget signal VmHWM cannot give.
    peak_live_heap_bytes: u64,
    budget_bytes: u64,
    within_budget: bool,
}

#[derive(Serialize)]
struct ThroughputOutput {
    scenario: String,
    users: usize,
    days: u64,
    replications: usize,
    total_events: u64,
    total_jobs: usize,
    total_wall_seconds: f64,
    events_per_sec: f64,
    jobs_per_sec: f64,
    peak_queue_len: u64,
    memory: MemorySection,
    per_rep: Vec<RepRow>,
    faulted: Option<FaultedSection>,
    /// The large-scale datapoint (absent in `--quick` runs).
    large: Option<Section>,
    /// Sharded-engine thread sweep on the large scenario (absent in
    /// `--quick` runs).
    scaling: Option<ScalingSection>,
    /// Million-user streaming run under the 2 GiB memory budget (absent in
    /// `--quick` runs).
    streaming: Option<StreamingSection>,
    /// Live-stats overhead on the large scenario (absent in `--quick` runs).
    observability: Option<ObservabilitySection>,
    /// Data-grid disabled-path cost and the locality scenario's cache
    /// totals (absent in `--quick` runs).
    data: Option<DataSection>,
}

/// Roughly 5% of total site-hours down across the 3-site, 14-day baseline:
/// 14d × 24h × 3 sites = 1008 site-hours; two outages totalling ~50h plus a
/// crash trickle land close to that.
fn faulted_spec() -> FaultSpec {
    FaultSpec {
        node_crashes: Some(NodeCrashSpec {
            mtbf_hours: 120.0,
            repair_hours: 4.0,
            cores_per_crash: 64,
            horizon_days: 14.0,
        }),
        site_outages: vec![
            OutageWindow {
                site: 1,
                start_hours: 72.0,
                duration_hours: 30.0,
                notice_hours: 2.0,
            },
            OutageWindow {
                site: 0,
                start_hours: 240.0,
                duration_hours: 20.0,
                notice_hours: 0.0,
            },
        ],
        ..FaultSpec::default()
    }
}

fn rep_rows(reps: &[Replication]) -> Vec<RepRow> {
    reps.iter()
        .map(|r| {
            let p = &r.output.profile;
            let jobs = r.output.db.jobs.len();
            RepRow {
                seed: r.seed,
                events: p.events_delivered,
                jobs,
                wall_seconds: p.wall_seconds,
                events_per_sec: p.events_per_sec,
                jobs_per_sec: jobs as f64 / p.wall_seconds.max(1e-9),
                peak_queue_len: p.peak_queue_len,
            }
        })
        .collect()
}

/// Run `reps_n` sequential replications of `cfg` and fold them into a
/// section with per-section memory figures.
fn measure(cfg: ScenarioConfig, base_seed: u64, reps_n: usize) -> (Section, Vec<Replication>) {
    let before = alloc_snapshot();
    let scenario = cfg.build();
    let reps = replicate(&scenario, base_seed, reps_n, 1);
    let alloc = AllocDelta::since(before).expect("counting allocator installed");
    let agg = aggregate_profiles(&reps);
    let per_rep = rep_rows(&reps);
    let total_jobs: usize = per_rep.iter().map(|r| r.jobs).sum();
    let section = Section {
        scenario: scenario.config().name.clone(),
        replications: reps_n,
        total_events: agg.events_delivered,
        total_jobs,
        total_wall_seconds: agg.wall_seconds,
        events_per_sec: agg.events_per_sec,
        jobs_per_sec: total_jobs as f64 / agg.wall_seconds.max(1e-9),
        peak_queue_len: agg.peak_queue_len,
        memory: MemorySection {
            peak_rss_bytes: peak_rss_bytes(),
            allocations: alloc.allocations,
            allocated_bytes: alloc.bytes,
        },
        per_rep,
    };
    (section, reps)
}

/// Run the large scenario once per thread count and fold the results into
/// the scaling section. `threads = 1` is the serial engine (the speedup
/// denominator); every sharded run is checked against its job records.
fn measure_scaling(cfg: ScenarioConfig, seed: u64, counts: &[usize]) -> ScalingSection {
    use tg_core::{Governor, RunOptions};
    let scenario = cfg.build();
    let mut rows: Vec<ScalingRow> = Vec::new();
    let mut protocol_rows: Vec<ScalingRow> = Vec::new();
    let mut baseline: Option<tg_core::SimOutput> = None;
    let mut identical = true;
    let sweep = |threads: usize,
                 governor: Governor,
                 rows: &mut Vec<ScalingRow>,
                 baseline: &mut Option<tg_core::SimOutput>,
                 identical: &mut bool,
                 serial_rate: Option<f64>| {
        let mut opts = RunOptions::with_threads(threads);
        opts.governor = governor;
        let out = scenario.run_with(seed, &opts);
        let p = &out.profile;
        rows.push(ScalingRow {
            threads,
            events: p.events_delivered,
            wall_seconds: p.wall_seconds,
            events_per_sec: p.events_per_sec,
            speedup: serial_rate.map_or(1.0, |s| p.events_per_sec / s),
            sync: p
                .sync
                .as_ref()
                .map(|s| ScalingSync::from_profile(s, p.events_delivered)),
        });
        match baseline {
            None => *baseline = Some(out),
            Some(base) => {
                let same = out.events_delivered == base.events_delivered
                    && out.end == base.end
                    && out.db.jobs == base.db.jobs;
                if !same {
                    *identical = false;
                    eprintln!("scaling: threads={threads} ({governor:?}) diverged from serial!");
                }
            }
        }
    };
    for &threads in counts {
        let serial_rate = rows.first().map(|r| r.events_per_sec);
        sweep(
            threads,
            Governor::default(),
            &mut rows,
            &mut baseline,
            &mut identical,
            serial_rate,
        );
    }
    let serial_rate = rows.first().map(|r| r.events_per_sec);
    for &threads in counts.iter().filter(|&&t| t > 1 && t <= 4) {
        sweep(
            threads,
            Governor::Off,
            &mut protocol_rows,
            &mut baseline,
            &mut identical,
            serial_rate,
        );
    }
    ScalingSection {
        scenario: scenario.config().name.clone(),
        rows,
        protocol_rows,
        identical,
    }
}

/// Run the million-user scenario through the streaming path (lazy
/// generation, records to a discard sink) and capture the memory ceiling.
fn measure_streaming(users: usize, days: u64, seed: u64) -> StreamingSection {
    use tg_core::{RecordStreaming, RunOptions};
    let cfg = ScenarioConfig::million(users, days);
    let name = cfg.name.clone();
    let scenario = cfg.build();
    let rss_before = peak_rss_bytes();
    reset_peak_in_use();
    let opts = RunOptions {
        stream_gen: true,
        record_streaming: RecordStreaming::Discard,
        ..RunOptions::default()
    };
    let out = scenario.run_with(seed, &opts);
    let peak_heap = peak_in_use_bytes().max(0) as u64;
    let rss_after = peak_rss_bytes();
    let tally = out
        .ingest_tally
        .as_ref()
        .expect("streaming run diverts records");
    // VmHWM is process-monotone: if this section left the high-water mark
    // untouched, an earlier (retained, materialized) section set it and the
    // live-heap leg alone decides the budget.
    let rss_ok = match (rss_before, rss_after) {
        (Some(before), Some(after)) => after <= STREAMING_BUDGET_BYTES || after == before,
        _ => true,
    };
    StreamingSection {
        scenario: name,
        users,
        days,
        total_events: out.profile.events_delivered,
        total_jobs: tally.jobs as usize,
        wall_seconds: out.profile.wall_seconds,
        events_per_sec: out.profile.events_per_sec,
        peak_rss_bytes: rss_after,
        peak_live_heap_bytes: peak_heap,
        budget_bytes: STREAMING_BUDGET_BYTES,
        within_budget: peak_heap <= STREAMING_BUDGET_BYTES && rss_ok,
    }
}

fn print_streaming(s: &StreamingSection) {
    let mib = |b: u64| format!("{:.1} MiB", b as f64 / (1 << 20) as f64);
    let mut table = Table::new(
        format!(
            "PERF (streaming): {} users × {} days, lazy generation + discard sink",
            s.users, s.days
        ),
        &["events", "jobs", "wall s", "events/s", "live heap", "RSS"],
    );
    table.row(vec![
        s.total_events.to_string(),
        s.total_jobs.to_string(),
        format!("{:.3}", s.wall_seconds),
        format!("{:.0}", s.events_per_sec),
        mib(s.peak_live_heap_bytes),
        s.peak_rss_bytes.map(mib).unwrap_or_else(|| "n/a".into()),
    ]);
    println!("{table}");
    println!(
        "streaming: {} the {} budget",
        if s.within_budget { "within" } else { "EXCEEDS" },
        mib(s.budget_bytes),
    );
}

/// Measure the live-stats observer cost: one unobserved and one observed
/// run of `cfg` at the same seed. The simulation outputs must be identical
/// (the observer contract); only the wall clock may move.
fn measure_observability(cfg: ScenarioConfig, seed: u64) -> ObservabilitySection {
    use tg_core::RunOptions;
    let scenario = cfg.build();
    let observed_opts = RunOptions {
        live_stats: true,
        ..RunOptions::default()
    };
    let mut unobs = f64::MIN;
    let mut obs = f64::MIN;
    let mut best_pair_ratio = f64::MIN;
    let mut first_stats = None;
    for rep in 0..OVERHEAD_REPS {
        let plain = scenario.run_with(seed, &RunOptions::default());
        let observed = scenario.run_with(seed, &observed_opts);
        unobs = unobs.max(plain.profile.events_per_sec);
        obs = obs.max(observed.profile.events_per_sec);
        best_pair_ratio = best_pair_ratio
            .max(observed.profile.events_per_sec / plain.profile.events_per_sec.max(1e-9));
        if rep == 0 {
            assert_eq!(
                plain.db.jobs, observed.db.jobs,
                "live stats perturbed the simulation"
            );
            first_stats = observed.stats;
        }
    }
    let stats = first_stats.expect("observed run reports stats");
    let overhead = (1.0 - best_pair_ratio).max(0.0);
    ObservabilitySection {
        scenario: scenario.config().name.clone(),
        unobserved_events_per_sec: unobs,
        observed_events_per_sec: obs,
        overhead_fraction: overhead,
        overhead_budget: OBSERVABILITY_OVERHEAD_BUDGET,
        within_overhead_budget: overhead <= OBSERVABILITY_OVERHEAD_BUDGET,
        spans: stats.spans.spans,
        groups: stats.spans.groups as u64,
        series_buckets: stats.series.rows.len() as u64,
    }
}

fn print_observability(s: &ObservabilitySection) {
    let mut table = Table::new(
        format!("PERF (observability): {} with --live-stats", s.scenario),
        &[
            "events/s off",
            "events/s on",
            "overhead",
            "spans",
            "groups",
            "buckets",
        ],
    );
    table.row(vec![
        format!("{:.0}", s.unobserved_events_per_sec),
        format!("{:.0}", s.observed_events_per_sec),
        format!("{:.1}%", 100.0 * s.overhead_fraction),
        s.spans.to_string(),
        s.groups.to_string(),
        s.series_buckets.to_string(),
    ]);
    println!("{table}");
    println!(
        "observability: {} the {:.0}% overhead budget",
        if s.within_overhead_budget {
            "within"
        } else {
            "EXCEEDS"
        },
        100.0 * s.overhead_budget,
    );
}

fn print_scaling(s: &ScalingSection) {
    let row_cells = |r: &ScalingRow| {
        let (rpe, rppe, clamps, gov) = match &r.sync {
            Some(sy) => (
                format!("{:.4}", sy.rounds_per_event),
                format!("{:.4}", sy.rounds_per_protocol_event),
                sy.bound_clamps.to_string(),
                if sy.governor_fired {
                    format!("fold@{}", r.events - sy.serial_tail_events)
                } else {
                    "-".to_string()
                },
            ),
            None => ("-".into(), "-".into(), "-".into(), "-".into()),
        };
        vec![
            r.threads.to_string(),
            r.events.to_string(),
            format!("{:.3}", r.wall_seconds),
            format!("{:.0}", r.events_per_sec),
            format!("{:.2}x", r.speedup),
            rpe,
            rppe,
            clamps,
            gov,
        ]
    };
    let headers = [
        "threads",
        "events",
        "wall s",
        "events/s",
        "speedup",
        "sync/ev",
        "sync/proto ev",
        "clamps",
        "governor",
    ];
    let mut table = Table::new(
        format!("PERF (scaling): {} sharded thread sweep", s.scenario),
        &headers,
    );
    for r in &s.rows {
        table.row(row_cells(r));
    }
    println!("{table}");
    let mut proto = Table::new(
        format!(
            "PERF (scaling): {} protocol rows (governor off)",
            s.scenario
        ),
        &headers,
    );
    for r in &s.protocol_rows {
        proto.row(row_cells(r));
    }
    println!("{proto}");
    println!(
        "scaling: sharded outputs {} the serial run",
        if s.identical { "match" } else { "DIVERGE from" }
    );
}

fn print_section(title: &str, s: &Section) {
    let mut table = Table::new(
        title.to_string(),
        &[
            "seed", "events", "jobs", "wall s", "events/s", "jobs/s", "peak q",
        ],
    );
    for r in &s.per_rep {
        table.row(vec![
            r.seed.to_string(),
            r.events.to_string(),
            r.jobs.to_string(),
            format!("{:.3}", r.wall_seconds),
            format!("{:.0}", r.events_per_sec),
            format!("{:.0}", r.jobs_per_sec),
            r.peak_queue_len.to_string(),
        ]);
    }
    table.row(vec![
        "all".to_string(),
        s.total_events.to_string(),
        s.total_jobs.to_string(),
        format!("{:.3}", s.total_wall_seconds),
        format!("{:.0}", s.events_per_sec),
        format!("{:.0}", s.jobs_per_sec),
        s.peak_queue_len.to_string(),
    ]);
    println!("{table}");
    println!(
        "memory: peak RSS {}, {} allocations / {:.1} MiB in section",
        s.memory
            .peak_rss_bytes
            .map(|b| format!("{:.1} MiB", b as f64 / (1 << 20) as f64))
            .unwrap_or_else(|| "n/a".to_string()),
        s.memory.allocations,
        s.memory.allocated_bytes as f64 / (1 << 20) as f64,
    );
}

/// Compare a fresh healthy section against a reference JSON: exact per-seed
/// event/job counts, and the ±15% pooled-rate guard. Returns the failures.
fn check_against(reference: &serde_json::Value, healthy: &Section) -> Vec<String> {
    let mut failures = Vec::new();
    let Some(ref_reps) = reference.get("per_rep").and_then(|v| v.as_array()) else {
        return vec!["reference JSON has no per_rep array".into()];
    };
    if ref_reps.len() != healthy.per_rep.len() {
        failures.push(format!(
            "replication count changed: reference {} vs current {}",
            ref_reps.len(),
            healthy.per_rep.len()
        ));
    }
    for (r, cur) in ref_reps.iter().zip(&healthy.per_rep) {
        let seed = r.get("seed").and_then(|v| v.as_u64()).unwrap_or(0);
        let events = r.get("events").and_then(|v| v.as_u64()).unwrap_or(0);
        let jobs = r.get("jobs").and_then(|v| v.as_u64()).unwrap_or(0);
        if seed != cur.seed || events != cur.events || jobs != cur.jobs as u64 {
            failures.push(format!(
                "seed {} determinism drift: reference (events {events}, jobs {jobs}) \
                 vs current (events {}, jobs {})",
                cur.seed, cur.events, cur.jobs
            ));
        }
    }
    if let Some(ref_rate) = reference.get("events_per_sec").and_then(|v| v.as_f64()) {
        let floor = ref_rate * 0.85;
        if healthy.events_per_sec < floor {
            failures.push(format!(
                "throughput regression: {:.0} events/s < 85% of reference {:.0}",
                healthy.events_per_sec, ref_rate
            ));
        }
    }
    failures
}

/// The sharded leg of the regression guard: if both the reference and the
/// current run carry a scaling sweep, the best sharded rate must not drop
/// below 85% of the reference's best, and the event count must match the
/// reference exactly (determinism). Quick runs (no sweep) skip this leg.
fn check_scaling(reference: &serde_json::Value, current: Option<&ScalingSection>) -> Vec<String> {
    let mut failures = Vec::new();
    let (Some(ref_rows), Some(cur)) = (
        reference
            .get("scaling")
            .and_then(|s| s.get("rows"))
            .and_then(|v| v.as_array()),
        current,
    ) else {
        return failures;
    };
    let best = |rows: &mut dyn Iterator<Item = (u64, f64)>| {
        rows.fold(
            (0u64, 0.0f64),
            |acc, (ev, r)| if r > acc.1 { (ev, r) } else { acc },
        )
    };
    let (ref_events, ref_rate) = best(&mut ref_rows.iter().filter_map(|r| {
        Some((
            r.get("events")?.as_u64()?,
            r.get("events_per_sec")?.as_f64()?,
        ))
    }));
    let (cur_events, cur_rate) = best(&mut cur.rows.iter().map(|r| (r.events, r.events_per_sec)));
    if ref_rate == 0.0 {
        return failures;
    }
    if ref_events != cur_events {
        failures.push(format!(
            "sharded determinism drift: reference {ref_events} events vs current {cur_events}"
        ));
    }
    if cur_rate < ref_rate * 0.85 {
        failures.push(format!(
            "sharded throughput regression: {cur_rate:.0} events/s < 85% of reference {ref_rate:.0}"
        ));
    }
    // The phase-2 pin: the engine as shipped (governed rows) must hold the
    // ≥10× sync-round cut over the PR 6 per-event protocol, whose measured
    // floor on this scenario was 0.337 rounds/event.
    const GOVERNED_ROUNDS_PER_EVENT_MAX: f64 = 0.0337;
    for r in cur.rows.iter().filter(|r| r.threads > 1) {
        let Some(rpe) = r.sync.as_ref().map(|s| s.rounds_per_event) else {
            continue;
        };
        if rpe > GOVERNED_ROUNDS_PER_EVENT_MAX {
            failures.push(format!(
                "governed sync overhead at threads={}: {rpe:.4} rounds/event \
                 > pinned {GOVERNED_ROUNDS_PER_EVENT_MAX}",
                r.threads
            ));
        }
    }
    // Protocol-overhead trajectory: sync rounds per protocol-executed event
    // on the governor-off rows must not creep past the committed reference
    // by more than 20% at the same thread count.
    if let Some(ref_proto) = reference
        .get("scaling")
        .and_then(|s| s.get("protocol_rows"))
        .and_then(|v| v.as_array())
    {
        for r in ref_proto {
            let (Some(threads), Some(ref_rpe)) = (
                r.get("threads").and_then(|v| v.as_u64()),
                r.get("sync")
                    .and_then(|s| s.get("rounds_per_protocol_event"))
                    .and_then(|v| v.as_f64()),
            ) else {
                continue;
            };
            let Some(cur_rpe) = cur
                .protocol_rows
                .iter()
                .find(|c| c.threads as u64 == threads)
                .and_then(|c| c.sync.as_ref().map(|s| s.rounds_per_protocol_event))
            else {
                continue;
            };
            if cur_rpe > ref_rpe * 1.2 {
                failures.push(format!(
                    "sync-protocol overhead regression at threads={threads}: \
                     {cur_rpe:.4} rounds/protocol-event > 120% of reference {ref_rpe:.4}"
                ));
            }
        }
    }
    failures
}

/// Every top-level key a `BENCH_throughput*.json` may carry. `--check`
/// fails loudly on anything else: a section renamed or added without being
/// registered here (and given a check leg) cannot silently pass the guard.
const KNOWN_KEYS: &[&str] = &[
    "scenario",
    "users",
    "days",
    "replications",
    "total_events",
    "total_jobs",
    "total_wall_seconds",
    "events_per_sec",
    "jobs_per_sec",
    "peak_queue_len",
    "memory",
    "per_rep",
    "faulted",
    "large",
    "scaling",
    "streaming",
    "observability",
    "data",
];

/// The optional sections; each must be present on both sides or neither.
const SECTION_KEYS: &[&str] = &[
    "faulted",
    "large",
    "scaling",
    "streaming",
    "observability",
    "data",
];

/// Strict section inventory: unknown reference keys fail, and a section
/// present in the reference but missing from this run (or vice versa) fails
/// instead of being silently skipped by its per-section check.
fn check_sections(reference: &serde_json::Value, produced: &[(&str, bool)]) -> Vec<String> {
    let mut failures = Vec::new();
    let Some(entries) = reference.as_object() else {
        return vec!["reference JSON is not an object".into()];
    };
    for (key, _) in entries {
        if !KNOWN_KEYS.contains(&key.as_str()) {
            failures.push(format!(
                "reference carries unknown key `{key}` — register it in KNOWN_KEYS \
                 and give it a check leg"
            ));
        }
    }
    for &name in SECTION_KEYS {
        let in_ref = reference.get(name).is_some_and(|v| !v.is_null());
        let in_cur = produced.iter().any(|(n, p)| *n == name && *p);
        match (in_ref, in_cur) {
            (true, false) => failures.push(format!(
                "reference has a `{name}` section but this run produced none \
                 (a --quick run checked against a full reference?)"
            )),
            (false, true) => failures.push(format!(
                "this run produced a `{name}` section the reference lacks — \
                 regenerate the reference with the full bench"
            )),
            _ => {}
        }
    }
    failures
}

/// The streaming leg of the regression guard: event count must match the
/// reference exactly (determinism), the rate floor is the usual 85%, and
/// the memory budget must hold. Section presence is enforced upstream by
/// [`check_sections`].
fn check_streaming(
    reference: &serde_json::Value,
    current: Option<&StreamingSection>,
) -> Vec<String> {
    let mut failures = Vec::new();
    let (Some(r), Some(cur)) = (reference.get("streaming").filter(|v| !v.is_null()), current)
    else {
        return failures;
    };
    if let Some(events) = r.get("total_events").and_then(|v| v.as_u64()) {
        if events != cur.total_events {
            failures.push(format!(
                "streaming determinism drift: reference {events} events vs current {}",
                cur.total_events
            ));
        }
    }
    if let Some(rate) = r.get("events_per_sec").and_then(|v| v.as_f64()) {
        if rate > 0.0 && cur.events_per_sec < rate * 0.85 {
            failures.push(format!(
                "streaming throughput regression: {:.0} events/s < 85% of reference {rate:.0}",
                cur.events_per_sec
            ));
        }
    }
    if !cur.within_budget {
        failures.push(format!(
            "streaming memory budget breached: {:.1} MiB live heap (budget {:.0} MiB)",
            cur.peak_live_heap_bytes as f64 / (1 << 20) as f64,
            cur.budget_bytes as f64 / (1 << 20) as f64,
        ));
    }
    failures
}

/// The observability leg of the regression guard: the sketch totals are
/// deterministic and must match the reference exactly, and the enabled-run
/// overhead must stay inside the budget. Section presence is enforced
/// upstream by [`check_sections`].
fn check_observability(
    reference: &serde_json::Value,
    current: Option<&ObservabilitySection>,
) -> Vec<String> {
    let mut failures = Vec::new();
    let (Some(r), Some(cur)) = (
        reference.get("observability").filter(|v| !v.is_null()),
        current,
    ) else {
        return failures;
    };
    for (field, got) in [
        ("spans", cur.spans),
        ("groups", cur.groups),
        ("series_buckets", cur.series_buckets),
    ] {
        if let Some(want) = r.get(field).and_then(|v| v.as_u64()) {
            if want != got {
                failures.push(format!(
                    "observability determinism drift: reference {field} {want} vs current {got}"
                ));
            }
        }
    }
    if !cur.within_overhead_budget {
        failures.push(format!(
            "live-stats overhead {:.1}% exceeds the {:.0}% budget",
            100.0 * cur.overhead_fraction,
            100.0 * cur.overhead_budget,
        ));
    }
    failures
}

/// The data-grid leg of the regression guard: the cache totals are
/// deterministic and must match the reference exactly, and the disabled
/// path must stay inside its overhead budget. Section presence is enforced
/// upstream by [`check_sections`].
fn check_data(reference: &serde_json::Value, current: Option<&DataSection>) -> Vec<String> {
    let mut failures = Vec::new();
    let (Some(r), Some(cur)) = (reference.get("data").filter(|v| !v.is_null()), current) else {
        return failures;
    };
    for (field, got) in [
        ("accesses", cur.accesses),
        ("hits", cur.hits),
        ("misses", cur.misses),
        ("evictions", cur.evictions),
    ] {
        if let Some(want) = r.get(field).and_then(|v| v.as_u64()) {
            if want != got {
                failures.push(format!(
                    "data-grid determinism drift: reference {field} {want} vs current {got}"
                ));
            }
        }
    }
    if let Some(want) = r.get("wan_mb").and_then(|v| v.as_f64()) {
        if (want - cur.wan_mb).abs() > 1e-6 {
            failures.push(format!(
                "data-grid determinism drift: reference wan_mb {want} vs current {}",
                cur.wan_mb
            ));
        }
    }
    if !cur.within_overhead_budget {
        failures.push(format!(
            "data-grid disabled-path overhead {:.1}% exceeds the {:.0}% budget",
            100.0 * cur.overhead_fraction,
            100.0 * cur.overhead_budget,
        ));
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).expect("--check needs a path").clone());

    let users = 300;
    let days = 14;
    let reps_n = 3;

    let (healthy, _) = measure(ScenarioConfig::baseline(users, days), 9000, reps_n);
    print_section(
        &format!("PERF: engine throughput, baseline {users} users × {days} days"),
        &healthy,
    );

    let (faulted, large, scaling, streaming, observability, data) = if quick {
        (None, None, None, None, None, None)
    } else {
        let mut faulted_cfg = ScenarioConfig::baseline(users, days);
        faulted_cfg.faults = Some(faulted_spec());
        let (fsec, freps) = measure(faulted_cfg, 9000, reps_n);
        let (mut killed, mut requeued) = (0u64, 0u64);
        for r in &freps {
            let fr = r.output.fault_report.as_ref().expect("faulted run");
            killed += fr.jobs_killed;
            requeued += fr.jobs_requeued;
        }
        let downtime_h = 30.0 + 20.0; // the two scheduled outages
        let site_hours = (days * 24) as f64 * 3.0;
        print_section(
            &format!(
                "PERF (faulted): same workload, ~{:.0}% downtime",
                100.0 * downtime_h / site_hours
            ),
            &fsec,
        );
        println!(
            "faulted: {killed} killed, {requeued} requeued across {reps_n} reps; \
             events/s {:.0} vs healthy {:.0}",
            fsec.events_per_sec, healthy.events_per_sec
        );

        let (lsec, _) = measure(ScenarioConfig::large(3000, 90), 9000, 1);
        print_section("PERF (large): 3000 users × 90 days", &lsec);

        let ssec = measure_scaling(ScenarioConfig::large(3000, 90), 9000, &[1, 2, 4, 8]);
        print_scaling(&ssec);
        assert!(ssec.identical, "sharded runs must reproduce serial output");

        let msec = measure_streaming(1_000_000, 365, 9000);
        print_streaming(&msec);
        assert!(
            msec.within_budget,
            "million-user streaming run breached the memory budget"
        );

        let osec = measure_observability(ScenarioConfig::large(3000, 90), 9000);
        print_observability(&osec);
        assert!(
            osec.within_overhead_budget,
            "live-stats overhead breached the {:.0}% budget",
            100.0 * OBSERVABILITY_OVERHEAD_BUDGET
        );

        let dsec = measure_data(ScenarioConfig::large(3000, 90), 9000);
        print_data(&dsec);
        assert!(
            dsec.within_overhead_budget,
            "data-grid disabled-path overhead breached the {:.0}% budget",
            100.0 * DATA_DISABLED_OVERHEAD_BUDGET
        );
        (
            Some(FaultedSection {
                downtime_fraction: downtime_h / site_hours,
                jobs_killed: killed,
                jobs_requeued: requeued,
                total_events: fsec.total_events,
                total_jobs: fsec.total_jobs,
                total_wall_seconds: fsec.total_wall_seconds,
                events_per_sec: fsec.events_per_sec,
                memory: fsec.memory,
                per_rep: fsec.per_rep,
            }),
            Some(lsec),
            Some(ssec),
            Some(msec),
            Some(osec),
            Some(dsec),
        )
    };

    let out = ThroughputOutput {
        scenario: healthy.scenario.clone(),
        users,
        days,
        replications: reps_n,
        total_events: healthy.total_events,
        total_jobs: healthy.total_jobs,
        total_wall_seconds: healthy.total_wall_seconds,
        events_per_sec: healthy.events_per_sec,
        jobs_per_sec: healthy.jobs_per_sec,
        peak_queue_len: healthy.peak_queue_len,
        memory: healthy.memory,
        per_rep: healthy.per_rep,
        faulted,
        large,
        scaling,
        streaming,
        observability,
        data,
    };
    save_json(
        if quick {
            "BENCH_throughput_quick"
        } else {
            "BENCH_throughput"
        },
        &out,
    );

    if let Some(path) = check_path {
        let raw = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read reference {path}: {e}"));
        let reference: serde_json::Value =
            serde_json::from_str(&raw).unwrap_or_else(|e| panic!("bad reference JSON {path}: {e}"));
        let produced = [
            ("faulted", out.faulted.is_some()),
            ("large", out.large.is_some()),
            ("scaling", out.scaling.is_some()),
            ("streaming", out.streaming.is_some()),
            ("observability", out.observability.is_some()),
            ("data", out.data.is_some()),
        ];
        let section_failures = check_sections(&reference, &produced);
        // Rebuild the healthy view from the serialized output (it moved).
        let healthy_view = Section {
            scenario: out.scenario.clone(),
            replications: out.replications,
            total_events: out.total_events,
            total_jobs: out.total_jobs,
            total_wall_seconds: out.total_wall_seconds,
            events_per_sec: out.events_per_sec,
            jobs_per_sec: out.jobs_per_sec,
            peak_queue_len: out.peak_queue_len,
            memory: MemorySection {
                peak_rss_bytes: None,
                allocations: 0,
                allocated_bytes: 0,
            },
            per_rep: out.per_rep,
        };
        let mut failures = section_failures;
        failures.extend(check_against(&reference, &healthy_view));
        failures.extend(check_scaling(&reference, out.scaling.as_ref()));
        failures.extend(check_streaming(&reference, out.streaming.as_ref()));
        failures.extend(check_observability(&reference, out.observability.as_ref()));
        failures.extend(check_data(&reference, out.data.as_ref()));
        if failures.is_empty() {
            println!("check: OK against {path}");
        } else {
            for f in &failures {
                eprintln!("check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
