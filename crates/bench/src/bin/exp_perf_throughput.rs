//! PERF — Engine throughput on the baseline scenario.
//!
//! Seeds the performance trajectory: every optimization PR reruns this and
//! compares against the previous `results/BENCH_throughput.json`. The
//! workload is the stock baseline (300 users, 14 days); replications run
//! strictly sequentially on one thread so wall-clock numbers are not
//! contended, and the simulation outputs stay bit-identical regardless.
//!
//! Reported: events/s and jobs/s per replication and pooled, plus the peak
//! event-queue length (memory/scale proxy). Wall-clock varies run to run —
//! only the deterministic columns (events, jobs, peak queue) are comparable
//! exactly; rates are indicative.

use serde::Serialize;
use tg_bench::{save_json, Table};
use tg_core::{
    aggregate_profiles, replicate, FaultSpec, NodeCrashSpec, OutageWindow, ScenarioConfig,
};

#[derive(Serialize)]
struct RepRow {
    seed: u64,
    events: u64,
    jobs: usize,
    wall_seconds: f64,
    events_per_sec: f64,
    jobs_per_sec: f64,
    peak_queue_len: u64,
}

#[derive(Serialize)]
struct ThroughputOutput {
    scenario: String,
    users: usize,
    days: u64,
    replications: usize,
    total_events: u64,
    total_jobs: usize,
    total_wall_seconds: f64,
    events_per_sec: f64,
    jobs_per_sec: f64,
    peak_queue_len: u64,
    per_rep: Vec<RepRow>,
    /// Same scenario rerun with a ~5%-downtime fault schedule attached:
    /// the fault layer's steady-state cost (per-job registry bookkeeping,
    /// fault events, kills and requeues) on top of the healthy baseline.
    faulted: FaultedSection,
}

#[derive(Serialize)]
struct FaultedSection {
    /// Fraction of site-hours lost to the scheduled outages.
    downtime_fraction: f64,
    total_events: u64,
    total_jobs: usize,
    total_wall_seconds: f64,
    events_per_sec: f64,
    jobs_killed: u64,
    jobs_requeued: u64,
    per_rep: Vec<RepRow>,
}

/// Roughly 5% of total site-hours down across the 3-site, 14-day baseline:
/// 14d × 24h × 3 sites = 1008 site-hours; two outages totalling ~50h plus a
/// crash trickle land close to that.
fn faulted_spec() -> FaultSpec {
    FaultSpec {
        node_crashes: Some(NodeCrashSpec {
            mtbf_hours: 120.0,
            repair_hours: 4.0,
            cores_per_crash: 64,
            horizon_days: 14.0,
        }),
        site_outages: vec![
            OutageWindow {
                site: 1,
                start_hours: 72.0,
                duration_hours: 30.0,
                notice_hours: 2.0,
            },
            OutageWindow {
                site: 0,
                start_hours: 240.0,
                duration_hours: 20.0,
                notice_hours: 0.0,
            },
        ],
        ..FaultSpec::default()
    }
}

fn main() {
    let users = 300;
    let days = 14;
    let reps_n = 3;
    let cfg = ScenarioConfig::baseline(users, days);
    let scenario = cfg.build();
    let reps = replicate(&scenario, 9000, reps_n, 1);

    let per_rep: Vec<RepRow> = reps
        .iter()
        .map(|r| {
            let p = &r.output.profile;
            let jobs = r.output.db.jobs.len();
            RepRow {
                seed: r.seed,
                events: p.events_delivered,
                jobs,
                wall_seconds: p.wall_seconds,
                events_per_sec: p.events_per_sec,
                jobs_per_sec: jobs as f64 / p.wall_seconds.max(1e-9),
                peak_queue_len: p.peak_queue_len,
            }
        })
        .collect();
    let agg = aggregate_profiles(&reps);
    let total_jobs: usize = per_rep.iter().map(|r| r.jobs).sum();

    let mut table = Table::new(
        format!("PERF: engine throughput, baseline {users} users × {days} days"),
        &[
            "seed", "events", "jobs", "wall s", "events/s", "jobs/s", "peak q",
        ],
    );
    for r in &per_rep {
        table.row(vec![
            r.seed.to_string(),
            r.events.to_string(),
            r.jobs.to_string(),
            format!("{:.3}", r.wall_seconds),
            format!("{:.0}", r.events_per_sec),
            format!("{:.0}", r.jobs_per_sec),
            r.peak_queue_len.to_string(),
        ]);
    }
    table.row(vec![
        "all".to_string(),
        agg.events_delivered.to_string(),
        total_jobs.to_string(),
        format!("{:.3}", agg.wall_seconds),
        format!("{:.0}", agg.events_per_sec),
        format!("{:.0}", total_jobs as f64 / agg.wall_seconds.max(1e-9)),
        agg.peak_queue_len.to_string(),
    ]);
    println!("{table}");

    // Faulted datapoint: identical workload, ~5% downtime fault schedule.
    let mut faulted_cfg = ScenarioConfig::baseline(users, days);
    faulted_cfg.faults = Some(faulted_spec());
    let faulted_scenario = faulted_cfg.build();
    let faulted_reps = replicate(&faulted_scenario, 9000, reps_n, 1);
    let faulted_per_rep: Vec<RepRow> = faulted_reps
        .iter()
        .map(|r| {
            let p = &r.output.profile;
            let jobs = r.output.db.jobs.len();
            RepRow {
                seed: r.seed,
                events: p.events_delivered,
                jobs,
                wall_seconds: p.wall_seconds,
                events_per_sec: p.events_per_sec,
                jobs_per_sec: jobs as f64 / p.wall_seconds.max(1e-9),
                peak_queue_len: p.peak_queue_len,
            }
        })
        .collect();
    let fagg = aggregate_profiles(&faulted_reps);
    let ftotal_jobs: usize = faulted_per_rep.iter().map(|r| r.jobs).sum();
    let (mut killed, mut requeued) = (0u64, 0u64);
    for r in &faulted_reps {
        let fr = r.output.fault_report.as_ref().expect("faulted run");
        killed += fr.jobs_killed;
        requeued += fr.jobs_requeued;
    }
    let downtime_h = 30.0 + 20.0; // the two scheduled outages
    let site_hours = (days * 24) as f64 * 3.0;
    let mut ftable = Table::new(
        format!(
            "PERF (faulted): same workload, ~{:.0}% downtime",
            100.0 * downtime_h / site_hours
        ),
        &[
            "seed", "events", "jobs", "wall s", "events/s", "jobs/s", "peak q",
        ],
    );
    for r in &faulted_per_rep {
        ftable.row(vec![
            r.seed.to_string(),
            r.events.to_string(),
            r.jobs.to_string(),
            format!("{:.3}", r.wall_seconds),
            format!("{:.0}", r.events_per_sec),
            format!("{:.0}", r.jobs_per_sec),
            r.peak_queue_len.to_string(),
        ]);
    }
    println!("{ftable}");
    println!(
        "faulted: {} killed, {} requeued across {} reps; events/s {:.0} vs healthy {:.0}",
        killed, requeued, reps_n, fagg.events_per_sec, agg.events_per_sec
    );

    save_json(
        "BENCH_throughput",
        &ThroughputOutput {
            scenario: scenario.config().name.clone(),
            users,
            days,
            replications: reps_n,
            total_events: agg.events_delivered,
            total_jobs,
            total_wall_seconds: agg.wall_seconds,
            events_per_sec: agg.events_per_sec,
            jobs_per_sec: total_jobs as f64 / agg.wall_seconds.max(1e-9),
            peak_queue_len: agg.peak_queue_len,
            per_rep,
            faulted: FaultedSection {
                downtime_fraction: downtime_h / site_hours,
                total_events: fagg.events_delivered,
                total_jobs: ftotal_jobs,
                total_wall_seconds: fagg.wall_seconds,
                events_per_sec: fagg.events_per_sec,
                jobs_killed: killed,
                jobs_requeued: requeued,
                per_rep: faulted_per_rep,
            },
        },
    );
}
