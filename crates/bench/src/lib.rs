//! # tg-bench — the experiment harness
//!
//! One binary per reconstructed table/figure (see `DESIGN.md` §4 for the
//! index). Binaries print the table/series the paper-style report would
//! show and write machine-readable JSON to `results/` (override with
//! `TG_RESULTS_DIR`). Everything is deterministic: each binary fixes its
//! base seed and replication count.
//!
//! This library holds what the binaries share: result emission ([`emit`])
//! and scenario construction/calibration helpers ([`setup`]).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod emit;
pub mod setup;
pub mod xcheck;

pub use emit::{save_json, Table};
pub use setup::{
    calibrated_users, expected_core_seconds_per_user_day, rc_only_config, rc_slots,
    rc_tasks_per_day_for_load, single_site_config, synthetic_library,
};
pub use xcheck::{trace_scratch_path, wait_crosscheck, WaitCrossCheck};
