//! Result emission: aligned text tables on stdout, JSON on disk.

use serde::Serialize;
use std::fmt;
use std::fs;
use std::path::PathBuf;

/// A printable result table.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Table title (experiment id + description).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of stringified cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        for (h, w) in self.headers.iter().zip(&widths) {
            write!(f, "{h:>w$}  ", w = w)?;
        }
        writeln!(f)?;
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = h;
            write!(f, "{:->w$}  ", "", w = w)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            for (cell, w) in row.iter().zip(&widths) {
                write!(f, "{cell:>w$}  ", w = w)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Directory JSON results land in (`TG_RESULTS_DIR`, default `results/`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("TG_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Write `value` as pretty JSON to `results/<name>.json`.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("[saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Format a float with `digits` decimals (table-cell helper).
pub fn fx(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Format a `(mean, ci)` pair as `mean ± ci`.
pub fn mean_ci(mean: f64, ci: f64, digits: usize) -> String {
    format!("{mean:.digits$} ± {ci:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22222".into()]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("alpha"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_rejected() {
        Table::new("x", &["a", "b"]).row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fx(1.23456, 2), "1.23");
        assert_eq!(mean_ci(10.0, 0.5, 1), "10.0 ± 0.5");
    }

    #[test]
    fn save_json_respects_env_dir() {
        let dir = std::env::temp_dir().join(format!("tgbench-{}", std::process::id()));
        std::env::set_var("TG_RESULTS_DIR", &dir);
        save_json("unit-test", &serde_json::json!({"k": 1}));
        let path = dir.join("unit-test.json");
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"k\""));
        std::env::remove_var("TG_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
