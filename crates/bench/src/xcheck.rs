//! Trace-analyzer cross-checks.
//!
//! An experiment that also wrote a JSONL trace can verify that the offline
//! span analyzer ([`tg_des::TraceAnalyzer`]) reconstructs its headline
//! aggregate — mean queue wait — from the trace alone. The two paths share
//! no code (experiments read the accounting DB, the analyzer replays span
//! records), so agreement is a real end-to-end check of the span schema.

use serde::Serialize;
use std::io::BufRead;
use std::path::Path;
use tg_core::SimOutput;
use tg_des::TraceAnalyzer;

/// Outcome of comparing analyzer-derived mean wait against the accounting
/// database of the replication that wrote the trace.
#[derive(Debug, Clone, Serialize)]
pub struct WaitCrossCheck {
    /// Mean wait (s) the analyzer reconstructed from spans alone.
    pub analyzer_mean_wait_s: f64,
    /// Mean wait (s) from the run's accounting records.
    pub db_mean_wait_s: f64,
    /// Relative disagreement, `|analyzer − db| / max(db, 1e-9)`.
    pub rel_err: f64,
    /// Completed jobs the analyzer saw.
    pub analyzer_jobs: u64,
    /// Jobs in the accounting database.
    pub db_jobs: u64,
}

impl WaitCrossCheck {
    /// True when the analyzer agrees with accounting within `tol`
    /// (relative) and saw every job.
    pub fn agrees_within(&self, tol: f64) -> bool {
        self.rel_err <= tol && self.analyzer_jobs == self.db_jobs
    }
}

/// Analyze the trace at `path` and compare its reconstructed mean wait
/// against `rep0` (the replication that wrote the trace).
///
/// Panics if the trace file cannot be read — a bench that asked for a trace
/// and lost it should fail loudly, not skip the check.
pub fn wait_crosscheck(path: &Path, rep0: &SimOutput) -> WaitCrossCheck {
    let file = std::fs::File::open(path)
        .unwrap_or_else(|e| panic!("cannot open trace {}: {e}", path.display()));
    let mut analyzer = TraceAnalyzer::new();
    for line in std::io::BufReader::new(file).lines() {
        let line = line.unwrap_or_else(|e| panic!("read error in {}: {e}", path.display()));
        analyzer.add_line(&line);
    }
    let analysis = analyzer.finish();
    let db_mean = rep0.mean_wait_secs();
    let rel_err = (analysis.mean_wait_s - db_mean).abs() / db_mean.max(1e-9);
    WaitCrossCheck {
        analyzer_mean_wait_s: analysis.mean_wait_s,
        db_mean_wait_s: db_mean,
        rel_err,
        analyzer_jobs: analysis.jobs,
        db_jobs: rep0.db.jobs.len() as u64,
    }
}

/// A scratch path for a trace file, under the results dir so it lands
/// somewhere writable and inspectable (`results/<name>.trace.jsonl`).
pub fn trace_scratch_path(name: &str) -> std::path::PathBuf {
    let dir = crate::emit::results_dir();
    let _ = std::fs::create_dir_all(&dir);
    dir.join(format!("{name}.trace.jsonl"))
}
