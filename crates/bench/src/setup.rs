//! Scenario construction and load calibration shared by the experiments.

use tg_core::ScenarioConfig;
use tg_model::SiteConfig;
use tg_sched::{MetaPolicy, RcPolicy, SchedulerKind};
use tg_workload::{GeneratorConfig, Modality, ModalityProfile, PopulationMix};

/// Expected core-seconds of demand one user of `profile` generates per day
/// (closed form from the profile's distributions; used to calibrate offered
/// load without trial runs).
pub fn expected_core_seconds_per_user_day(profile: &ModalityProfile) -> f64 {
    let mean_runtime = profile
        .runtime
        .build()
        .mean()
        .expect("runtime distributions have finite means");
    let wsum: f64 = profile.cores_weights.iter().map(|&(_, w)| w).sum();
    let mean_cores: f64 = profile
        .cores_weights
        .iter()
        .map(|&(c, w)| c as f64 * w)
        .sum::<f64>()
        / wsum;
    let expansion = match profile.modality {
        Modality::Ensemble => profile
            .ensemble_width
            .as_ref()
            .and_then(|d| d.build().mean())
            .unwrap_or(1.0),
        Modality::Workflow => {
            let wsum: f64 = profile.dag_shapes.iter().map(|&(_, w)| w).sum();
            profile
                .dag_shapes
                .iter()
                .map(|&(shape, w)| shape.task_count() as f64 * w)
                .sum::<f64>()
                / wsum.max(1e-9)
        }
        _ => 1.0,
    };
    profile.per_user_per_day * expansion * mean_cores * mean_runtime
}

/// Number of users of `profile` needed to offer `target_load` (fraction of
/// capacity) on `total_cores` cores.
pub fn calibrated_users(profile: &ModalityProfile, total_cores: usize, target_load: f64) -> usize {
    assert!(target_load > 0.0, "load must be positive");
    let per_user = expected_core_seconds_per_user_day(profile);
    let capacity_per_day = total_cores as f64 * 86_400.0;
    ((target_load * capacity_per_day / per_user).round() as usize).max(1)
}

/// A single-site scenario carrying only the given modality populations.
///
/// `populations` maps modality → user count; all other modalities get zero
/// users. The site has `nodes × cores_per_node` cores and no RC fabric
/// unless `rc_nodes > 0`.
#[allow(clippy::too_many_arguments)] // experiment knobs, called with literals
pub fn single_site_config(
    name: &str,
    nodes: usize,
    cores_per_node: usize,
    rc_nodes: usize,
    rc_area: u32,
    days: u64,
    populations: &[(Modality, usize)],
    scheduler: SchedulerKind,
) -> ScenarioConfig {
    let site = SiteConfig {
        batch_nodes: nodes,
        cores_per_node,
        rc_nodes,
        rc_area_per_node: rc_area,
        ..SiteConfig::medium(name)
    };
    let mut mix = PopulationMix {
        users_per_modality: [0; Modality::ALL.len()],
        projects: 16,
        activity_zipf_s: 0.8,
        gateways: 4,
    };
    for &(m, n) in populations {
        mix.users_per_modality[m.index()] = n;
    }
    let rc_users = mix.users_per_modality[Modality::RcAccelerated.index()];
    let workload = GeneratorConfig {
        horizon: tg_des::SimDuration::from_days(days),
        mix,
        profiles: ModalityProfile::all_defaults(),
        sites: 1,
        rc_sites: if rc_users > 0 {
            vec![tg_model::SiteId(0)]
        } else {
            Vec::new()
        },
        rc_config_count: if rc_users > 0 { 12 } else { 0 },
        data: None,
    };
    ScenarioConfig {
        name: format!("{name}-{days}d"),
        sites: vec![site],
        data_home: 0,
        scheduler,
        meta: MetaPolicy::ShortestEta,
        rc_policy: RcPolicy::AWARE,
        workload,
        library: None,
        sample_interval: None,
        faults: None,
        data: None,
    }
}

/// An RC-partition-focused scenario.
///
/// Two sites: site 0 is a small repository/archive site hosting the
/// bitstream repository (so every cache miss pays a real WAN fetch — its
/// uplink is deliberately thin); site 1 carries the RC partition
/// (`rc_nodes × rc_area`) plus a software-fallback batch pool. The workload
/// is purely RC users offering `tasks_per_day` hardware-accelerable tasks in
/// total.
pub fn rc_only_config(
    rc_nodes: usize,
    rc_area: u32,
    tasks_per_day: f64,
    days: u64,
    config_count: usize,
) -> ScenarioConfig {
    assert!(tasks_per_day > 0.0);
    let repo_site = SiteConfig {
        batch_nodes: 8,
        wan_bandwidth_mbps: 200.0, // thin pipe: bitstream fetches cost real time
        wan_latency_ms: 30.0,
        ..SiteConfig::medium("rc-repo")
    };
    let rc_site = SiteConfig {
        batch_nodes: 128,
        cores_per_node: 8,
        rc_nodes,
        rc_area_per_node: rc_area,
        ..SiteConfig::medium("rc-fabric")
    };
    let users = 40usize;
    let mut mix = PopulationMix {
        users_per_modality: [0; Modality::ALL.len()],
        projects: 8,
        activity_zipf_s: 0.0, // equal users: total rate is what matters here
        gateways: 1,
    };
    mix.users_per_modality[Modality::RcAccelerated.index()] = users;
    let mut profiles = ModalityProfile::all_defaults();
    profiles[Modality::RcAccelerated.index()].per_user_per_day = tasks_per_day / users as f64;
    let workload = GeneratorConfig {
        horizon: tg_des::SimDuration::from_days(days),
        mix,
        profiles,
        sites: 2,
        rc_sites: vec![tg_model::SiteId(1)],
        rc_config_count: config_count,
        data: None,
    };
    ScenarioConfig {
        name: format!("rc-{rc_nodes}n-{tasks_per_day}tpd-{days}d"),
        sites: vec![repo_site, rc_site],
        data_home: 0,
        scheduler: SchedulerKind::Easy,
        meta: MetaPolicy::ShortestEta,
        rc_policy: RcPolicy::AWARE,
        workload,
        library: None,
        sample_interval: None,
        faults: None,
        data: None,
    }
}

/// The synthetic configuration library with overridden reconfiguration time
/// and bitstream sizes scaled by `bitstream_scale` (1.0 keeps the 8–24 MB
/// defaults). RC experiments inject this so the sweep axes are explicit.
pub fn synthetic_library(
    count: usize,
    reconfig: tg_des::SimDuration,
    bitstream_scale: f64,
) -> tg_model::ConfigLibrary {
    use tg_model::config::{ConfigLibrary, ProcessorConfig};
    let mut lib = ConfigLibrary::new();
    for (_, cfg) in ConfigLibrary::synthetic(count).iter() {
        lib.add(ProcessorConfig {
            reconfig_time: reconfig,
            bitstream_mb: cfg.bitstream_mb * bitstream_scale,
            ..cfg.clone()
        });
    }
    lib
}

/// Rough concurrent-task capacity of an RC partition: regions per node ×
/// nodes, with the synthetic library's mean kernel area of 3.
pub fn rc_slots(rc_nodes: usize, rc_area: u32) -> f64 {
    rc_nodes as f64 * (rc_area as f64 / 3.0)
}

/// Tasks/day that load an RC partition to `target` utilization, given the
/// default RC profile's mean hardware service time (~77 s: 1200 s software
/// runtime × E[1/speedup] over Uniform(4, 40)).
pub fn rc_tasks_per_day_for_load(rc_nodes: usize, rc_area: u32, target: f64) -> f64 {
    let mean_hw_service_s = 1200.0 * ((40.0f64 / 4.0).ln() / 36.0);
    target * rc_slots(rc_nodes, rc_area) * 86_400.0 / mean_hw_service_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_demand_is_positive_for_all_profiles() {
        for m in Modality::ALL {
            let p = ModalityProfile::default_for(m);
            let cs = expected_core_seconds_per_user_day(&p);
            assert!(cs > 0.0, "{m}: {cs}");
        }
    }

    #[test]
    fn ensemble_and_workflow_expand_demand() {
        let batch = expected_core_seconds_per_user_day(&ModalityProfile::default_for(
            Modality::BatchComputing,
        ));
        // A batch user submits 1.5 large jobs/day of ~4 h — big demand; an
        // ensemble instance expands ~60× over its per-instance rate.
        let ens_profile = ModalityProfile::default_for(Modality::Ensemble);
        let per_instance =
            ens_profile.per_user_per_day * ens_profile.runtime.build().mean().unwrap() * 2.0; // mean cores ≈ 2
        let ens = expected_core_seconds_per_user_day(&ens_profile);
        assert!(ens > 10.0 * per_instance, "width multiplies demand");
        assert!(batch > 0.0);
    }

    #[test]
    fn calibration_hits_target_load_approximately() {
        use tg_des::RngFactory;
        use tg_workload::WorkloadGenerator;
        let profile = ModalityProfile::default_for(Modality::BatchComputing);
        let cores = 2048;
        let users = calibrated_users(&profile, cores, 0.7);
        let cfg = single_site_config(
            "cal",
            cores / 8,
            8,
            0,
            0,
            14,
            &[(Modality::BatchComputing, users)],
            SchedulerKind::Easy,
        );
        let w = WorkloadGenerator::new(cfg.workload.clone()).generate(&RngFactory::new(1));
        let load = w.offered_load(cores, cfg.workload.horizon);
        assert!(
            (load - 0.7).abs() < 0.25,
            "calibrated load {load} should be near 0.7"
        );
    }

    #[test]
    fn single_site_config_is_buildable_and_runnable() {
        let cfg = single_site_config(
            "t",
            16,
            4,
            0,
            0,
            2,
            &[(Modality::Interactive, 10)],
            SchedulerKind::Fcfs,
        );
        let out = cfg.build().run(1);
        assert!(!out.db.jobs.is_empty());
        assert!(out.truth.values().all(|&m| m == Modality::Interactive));
    }

    #[test]
    fn rc_only_config_runs_on_fabric() {
        let cfg = rc_only_config(4, 8, 200.0, 2, 6);
        let out = cfg.build().run(2);
        assert!(!out.db.jobs.is_empty());
        assert!(
            out.site_stats[1].rc_stats.completed > 0,
            "fabric lives at site 1"
        );
        // Bitstream fetches cross the WAN from site 0 and cost real time.
        assert!(out
            .db
            .rc_placements
            .iter()
            .any(|p| p.transfer > tg_des::SimDuration::ZERO));
    }

    #[test]
    fn rc_load_calibration_is_consistent() {
        let slots = rc_slots(16, 8);
        assert!((slots - 42.6).abs() < 0.1);
        let tpd = rc_tasks_per_day_for_load(16, 8, 0.7);
        // ~33k tasks/day region.
        assert!(tpd > 20_000.0 && tpd < 50_000.0, "{tpd}");
    }
}
