//! Inter-site wide-area network model.
//!
//! A hub-and-spoke topology matching the TeraGrid backbone: every site has an
//! uplink (bandwidth + latency) to a common hub; a site-to-site transfer
//! traverses both uplinks, so its bandwidth is the minimum of the two and its
//! latency the sum. Transfers are contention-free (each gets full link
//! bandwidth) — adequate for staging/bitstream latencies, and documented as a
//! deliberate simplification in DESIGN.md.
//!
//! A configurable *congestion factor* per site lets experiments model
//! overloaded links without a full flow-level model.

use crate::ids::SiteId;
use serde::{Deserialize, Serialize};
use tg_des::SimDuration;

/// One site's uplink to the backbone hub.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uplink {
    /// Usable bandwidth in MB/s.
    pub bandwidth_mbps: f64,
    /// One-way latency to the hub.
    pub latency: SimDuration,
    /// Multiplier ≥ 1 applied to transfer times (1 = uncongested).
    pub congestion: f64,
}

impl Uplink {
    /// An uplink with the given bandwidth (MB/s) and latency (ms), uncongested.
    pub fn new(bandwidth_mbps: f64, latency_ms: f64) -> Self {
        assert!(bandwidth_mbps > 0.0, "bandwidth must be positive");
        assert!(latency_ms >= 0.0, "latency must be non-negative");
        Uplink {
            bandwidth_mbps,
            latency: SimDuration::from_secs_f64(latency_ms / 1000.0),
            congestion: 1.0,
        }
    }
}

/// A transient degradation of one site's uplink (WAN fault window).
///
/// Multipliers are relative to the configured uplink: bandwidth is divided by
/// `bandwidth_factor`, latency multiplied by `latency_factor`. `1.0/1.0`
/// means healthy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkDegradation {
    /// Factor ≥ 1 dividing the uplink's usable bandwidth.
    pub bandwidth_factor: f64,
    /// Factor ≥ 1 multiplying the uplink's one-way latency.
    pub latency_factor: f64,
}

impl Default for LinkDegradation {
    fn default() -> Self {
        LinkDegradation {
            bandwidth_factor: 1.0,
            latency_factor: 1.0,
        }
    }
}

/// The federation's WAN.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Network {
    uplinks: Vec<Uplink>,
    /// Site hosting the configuration-bitstream repository.
    repository: Option<SiteId>,
    /// Active per-site fault degradations, indexed by site. Empty (the
    /// common case) means every link is healthy and transfer math is
    /// bit-identical to a fault-free build.
    #[serde(default)]
    degradations: Vec<LinkDegradation>,
}

impl Network {
    /// An empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Register a site's uplink; call once per site in site-id order.
    pub fn add_uplink(&mut self, uplink: Uplink) -> SiteId {
        self.uplinks.push(uplink);
        SiteId(self.uplinks.len() - 1)
    }

    /// Number of sites attached.
    pub fn len(&self) -> usize {
        self.uplinks.len()
    }

    /// True if no sites are attached.
    pub fn is_empty(&self) -> bool {
        self.uplinks.is_empty()
    }

    /// Designate the site hosting the central bitstream repository.
    pub fn set_repository(&mut self, site: SiteId) {
        assert!(site.index() < self.uplinks.len(), "unknown site");
        self.repository = Some(site);
    }

    /// The bitstream repository site, if configured.
    pub fn repository(&self) -> Option<SiteId> {
        self.repository
    }

    /// A site's uplink.
    pub fn uplink(&self, site: SiteId) -> &Uplink {
        &self.uplinks[site.index()]
    }

    /// Set a site's congestion factor (≥ 1).
    pub fn set_congestion(&mut self, site: SiteId, factor: f64) {
        assert!(factor >= 1.0, "congestion factor must be >= 1");
        self.uplinks[site.index()].congestion = factor;
    }

    /// Open a fault-degradation window on `site`'s uplink: bandwidth divided
    /// by `bandwidth_factor`, latency multiplied by `latency_factor` (both
    /// ≥ 1) until [`Network::clear_degradation`].
    pub fn set_degradation(&mut self, site: SiteId, bandwidth_factor: f64, latency_factor: f64) {
        assert!(site.index() < self.uplinks.len(), "unknown site");
        assert!(bandwidth_factor >= 1.0, "bandwidth factor must be >= 1");
        assert!(latency_factor >= 1.0, "latency factor must be >= 1");
        if self.degradations.len() < self.uplinks.len() {
            self.degradations
                .resize(self.uplinks.len(), LinkDegradation::default());
        }
        self.degradations[site.index()] = LinkDegradation {
            bandwidth_factor,
            latency_factor,
        };
    }

    /// Restore `site`'s uplink to its configured parameters.
    pub fn clear_degradation(&mut self, site: SiteId) {
        if let Some(d) = self.degradations.get_mut(site.index()) {
            *d = LinkDegradation::default();
        }
    }

    /// The active degradation on `site`'s uplink (healthy if none set).
    pub fn degradation(&self, site: SiteId) -> LinkDegradation {
        self.degradations
            .get(site.index())
            .copied()
            .unwrap_or_default()
    }

    /// Time to move `mb` megabytes from `src` to `dst`.
    ///
    /// Same-site transfers are free (local staging is priced by
    /// [`crate::storage::Storage`], not the WAN).
    pub fn transfer_time(&self, src: SiteId, dst: SiteId, mb: f64) -> SimDuration {
        assert!(mb >= 0.0, "negative transfer size");
        if src == dst {
            return SimDuration::ZERO;
        }
        let a = self.uplink(src);
        let b = self.uplink(dst);
        let mut bw_a = a.bandwidth_mbps / a.congestion;
        let mut bw_b = b.bandwidth_mbps / b.congestion;
        let mut latency = a.latency + b.latency;
        // Degradation windows stay out of the healthy path entirely so that
        // fault-free runs remain bit-identical to pre-fault builds.
        if !self.degradations.is_empty() {
            let da = self.degradation(src);
            let db = self.degradation(dst);
            bw_a /= da.bandwidth_factor;
            bw_b /= db.bandwidth_factor;
            let lf = da.latency_factor.max(db.latency_factor);
            if lf != 1.0 {
                latency = latency.mul_f64(lf);
            }
        }
        let bw = bw_a.min(bw_b);
        latency + SimDuration::from_secs_f64(mb / bw)
    }

    /// Time to fetch `mb` megabytes from the bitstream repository to `dst`.
    /// Zero if no repository is configured (bitstreams assumed pre-staged).
    pub fn fetch_from_repository(&self, dst: SiteId, mb: f64) -> SimDuration {
        match self.repository {
            Some(repo) => self.transfer_time(repo, dst, mb),
            None => SimDuration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net3() -> Network {
        let mut n = Network::new();
        n.add_uplink(Uplink::new(1000.0, 10.0)); // site0
        n.add_uplink(Uplink::new(100.0, 20.0)); // site1 (slow)
        n.add_uplink(Uplink::new(1000.0, 5.0)); // site2
        n
    }

    #[test]
    fn transfer_uses_min_bandwidth_and_summed_latency() {
        let n = net3();
        // 100 MB from site0 to site1: bw = min(1000,100)=100 → 1 s; latency 30 ms.
        let t = n.transfer_time(SiteId(0), SiteId(1), 100.0);
        assert!((t.as_secs_f64() - 1.030).abs() < 1e-9, "{t}");
        // Symmetric.
        assert_eq!(t, n.transfer_time(SiteId(1), SiteId(0), 100.0));
    }

    #[test]
    fn same_site_is_free() {
        let n = net3();
        assert_eq!(
            n.transfer_time(SiteId(1), SiteId(1), 1e9),
            SimDuration::ZERO
        );
    }

    #[test]
    fn zero_bytes_costs_only_latency() {
        let n = net3();
        let t = n.transfer_time(SiteId(0), SiteId(2), 0.0);
        assert!((t.as_secs_f64() - 0.015).abs() < 1e-9);
    }

    #[test]
    fn congestion_scales_time() {
        let mut n = net3();
        let before = n.transfer_time(SiteId(0), SiteId(2), 1000.0);
        n.set_congestion(SiteId(2), 4.0);
        let after = n.transfer_time(SiteId(0), SiteId(2), 1000.0);
        // bandwidth term ×4; latency unchanged.
        let bw_before = before.as_secs_f64() - 0.015;
        let bw_after = after.as_secs_f64() - 0.015;
        assert!((bw_after / bw_before - 4.0).abs() < 1e-6);
    }

    #[test]
    fn repository_fetch() {
        let mut n = net3();
        assert_eq!(n.fetch_from_repository(SiteId(1), 64.0), SimDuration::ZERO);
        n.set_repository(SiteId(0));
        let t = n.fetch_from_repository(SiteId(1), 100.0);
        assert!((t.as_secs_f64() - 1.030).abs() < 1e-9);
        // Repository-local fetch is free.
        assert_eq!(n.fetch_from_repository(SiteId(0), 100.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "unknown site")]
    fn repository_must_exist() {
        let mut n = net3();
        n.set_repository(SiteId(9));
    }

    #[test]
    fn degradation_scales_bandwidth_and_latency_until_cleared() {
        let mut n = net3();
        let healthy = n.transfer_time(SiteId(0), SiteId(2), 1000.0);
        n.set_degradation(SiteId(2), 4.0, 3.0);
        let degraded = n.transfer_time(SiteId(0), SiteId(2), 1000.0);
        // latency 15 ms → 45 ms; bandwidth term ×4.
        let bw_before = healthy.as_secs_f64() - 0.015;
        let bw_after = degraded.as_secs_f64() - 0.045;
        assert!((bw_after / bw_before - 4.0).abs() < 1e-6, "{degraded}");
        // An untouched pair is unaffected.
        assert_eq!(
            n.transfer_time(SiteId(0), SiteId(1), 100.0),
            net3().transfer_time(SiteId(0), SiteId(1), 100.0)
        );
        n.clear_degradation(SiteId(2));
        assert_eq!(n.transfer_time(SiteId(0), SiteId(2), 1000.0), healthy);
        assert_eq!(n.degradation(SiteId(2)), LinkDegradation::default());
    }

    #[test]
    fn degradation_composes_with_congestion() {
        let mut n = net3();
        n.set_congestion(SiteId(2), 2.0);
        let congested = n.transfer_time(SiteId(0), SiteId(2), 1000.0);
        n.set_degradation(SiteId(2), 2.0, 1.0);
        let both = n.transfer_time(SiteId(0), SiteId(2), 1000.0);
        let bw_c = congested.as_secs_f64() - 0.015;
        let bw_both = both.as_secs_f64() - 0.015;
        assert!((bw_both / bw_c - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "bandwidth factor")]
    fn degradation_rejects_sub_unit_factors() {
        let mut n = net3();
        n.set_degradation(SiteId(0), 0.5, 1.0);
    }
}
