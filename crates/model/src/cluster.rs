//! The space-shared batch partition of a site.
//!
//! Core-granular accounting: jobs acquire a number of cores and hold them for
//! their whole runtime (no time-sharing), which is how TeraGrid-era batch
//! systems allocated. Placement detail below the core count is not modeled —
//! queue dynamics don't depend on it.

use tg_des::stats::Utilization;
use tg_des::SimTime;

/// Core pool of one site's batch partition.
#[derive(Debug, Clone)]
pub struct Cluster {
    total_cores: usize,
    free_cores: usize,
    /// Cores withdrawn by faults (node crash, site outage); neither free nor
    /// busy, and idle in the utilization integral (capacity is unchanged —
    /// downtime *is* lost utilization).
    offline_cores: usize,
    util: Utilization,
    jobs_started: u64,
    jobs_finished: u64,
}

impl Cluster {
    /// A cluster with `total_cores` cores, all free, tracked from `start`.
    pub fn new(start: SimTime, total_cores: usize) -> Self {
        assert!(total_cores > 0, "cluster must have cores");
        Cluster {
            total_cores,
            free_cores: total_cores,
            offline_cores: 0,
            util: Utilization::new(start, total_cores as f64),
            jobs_started: 0,
            jobs_finished: 0,
        }
    }

    /// Total core count.
    pub fn total_cores(&self) -> usize {
        self.total_cores
    }

    /// Currently free cores.
    pub fn free_cores(&self) -> usize {
        self.free_cores
    }

    /// Cores currently withdrawn by faults.
    pub fn offline_cores(&self) -> usize {
        self.offline_cores
    }

    /// Currently busy cores.
    pub fn busy_cores(&self) -> usize {
        self.total_cores - self.free_cores - self.offline_cores
    }

    /// Can a job needing `cores` start right now?
    pub fn can_fit(&self, cores: usize) -> bool {
        cores <= self.free_cores
    }

    /// Would a job needing `cores` *ever* fit on this cluster?
    pub fn can_ever_fit(&self, cores: usize) -> bool {
        cores <= self.total_cores
    }

    /// Acquire `cores` at `now`. Returns `false` (and changes nothing) if not
    /// enough cores are free. Panics if `cores` is zero or exceeds the
    /// machine size — both are scheduler bugs, not load conditions.
    pub fn acquire(&mut self, now: SimTime, cores: usize) -> bool {
        assert!(cores > 0, "zero-core acquisition");
        assert!(
            cores <= self.total_cores,
            "job larger than machine reached the cluster"
        );
        if cores > self.free_cores {
            return false;
        }
        self.free_cores -= cores;
        self.util.acquire(now, cores as f64);
        self.jobs_started += 1;
        true
    }

    /// Release `cores` at `now`.
    pub fn release(&mut self, now: SimTime, cores: usize) {
        assert!(
            self.free_cores + self.offline_cores + cores <= self.total_cores,
            "released more cores than were acquired"
        );
        self.free_cores += cores;
        self.util.release(now, cores as f64);
        self.jobs_finished += 1;
    }

    /// Reclaim `cores` from a killed job at `now` without counting a
    /// completion — the fault path's counterpart of [`Cluster::release`].
    pub fn preempt(&mut self, now: SimTime, cores: usize) {
        assert!(
            self.free_cores + self.offline_cores + cores <= self.total_cores,
            "preempted more cores than were acquired"
        );
        self.free_cores += cores;
        self.util.release(now, cores as f64);
    }

    /// Withdraw `cores` free cores from service (node crash / site outage).
    /// Callers must kill or drain enough work first to free them.
    pub fn take_offline(&mut self, _now: SimTime, cores: usize) {
        assert!(
            cores <= self.free_cores,
            "cannot take busy cores offline — preempt their jobs first"
        );
        self.free_cores -= cores;
        self.offline_cores += cores;
    }

    /// Return `cores` previously-offline cores to the free pool.
    pub fn bring_online(&mut self, _now: SimTime, cores: usize) {
        assert!(
            cores <= self.offline_cores,
            "bringing online more cores than are offline"
        );
        self.offline_cores -= cores;
        self.free_cores += cores;
    }

    /// Average utilization (fraction of cores busy) over `[start, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.util.average(now)
    }

    /// Core-seconds delivered so far.
    pub fn core_seconds(&self, now: SimTime) -> f64 {
        self.util.busy_integral(now)
    }

    /// Jobs that have started on this cluster.
    pub fn jobs_started(&self) -> u64 {
        self.jobs_started
    }

    /// Jobs that have finished on this cluster.
    pub fn jobs_finished(&self) -> u64 {
        self.jobs_finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_des::SimDuration;

    #[test]
    fn acquire_release_roundtrip() {
        let mut c = Cluster::new(SimTime::ZERO, 100);
        assert!(c.acquire(SimTime::ZERO, 40));
        assert_eq!(c.free_cores(), 60);
        assert_eq!(c.busy_cores(), 40);
        c.release(SimTime::from_secs(10), 40);
        assert_eq!(c.free_cores(), 100);
        assert_eq!(c.jobs_started(), 1);
        assert_eq!(c.jobs_finished(), 1);
    }

    #[test]
    fn acquire_fails_when_full_without_side_effects() {
        let mut c = Cluster::new(SimTime::ZERO, 10);
        assert!(c.acquire(SimTime::ZERO, 8));
        assert!(!c.acquire(SimTime::ZERO, 4));
        assert_eq!(c.free_cores(), 2);
        assert_eq!(c.jobs_started(), 1);
    }

    #[test]
    fn fit_predicates() {
        let mut c = Cluster::new(SimTime::ZERO, 10);
        c.acquire(SimTime::ZERO, 6);
        assert!(c.can_fit(4));
        assert!(!c.can_fit(5));
        assert!(c.can_ever_fit(10));
        assert!(!c.can_ever_fit(11));
    }

    #[test]
    fn utilization_integrates() {
        let mut c = Cluster::new(SimTime::ZERO, 10);
        c.acquire(SimTime::ZERO, 10);
        c.release(SimTime::from_secs(30), 10);
        // full for 30 s, idle for 30 s
        let now = SimTime::from_secs(60);
        assert!((c.utilization(now) - 0.5).abs() < 1e-12);
        assert!((c.core_seconds(now) - 300.0).abs() < 1e-9);
        let _ = SimDuration::ZERO;
    }

    #[test]
    #[should_panic(expected = "larger than machine")]
    fn oversized_job_panics() {
        let mut c = Cluster::new(SimTime::ZERO, 10);
        c.acquire(SimTime::ZERO, 11);
    }

    #[test]
    #[should_panic(expected = "released more cores")]
    fn over_release_panics() {
        let mut c = Cluster::new(SimTime::ZERO, 10);
        c.release(SimTime::ZERO, 1);
    }

    #[test]
    fn offline_cores_are_neither_free_nor_busy() {
        let mut c = Cluster::new(SimTime::ZERO, 10);
        c.acquire(SimTime::ZERO, 4);
        c.take_offline(SimTime::ZERO, 3);
        assert_eq!(c.free_cores(), 3);
        assert_eq!(c.offline_cores(), 3);
        assert_eq!(c.busy_cores(), 4);
        assert!(c.can_fit(3));
        assert!(!c.can_fit(4));
        c.bring_online(SimTime::from_secs(60), 3);
        assert_eq!(c.free_cores(), 6);
        assert_eq!(c.offline_cores(), 0);
    }

    #[test]
    fn preempt_reclaims_without_counting_a_completion() {
        let mut c = Cluster::new(SimTime::ZERO, 10);
        c.acquire(SimTime::ZERO, 6);
        c.preempt(SimTime::from_secs(5), 6);
        assert_eq!(c.free_cores(), 10);
        assert_eq!(c.jobs_started(), 1);
        assert_eq!(c.jobs_finished(), 0);
        // The 6 cores were busy for 5 s before the kill.
        assert!((c.core_seconds(SimTime::from_secs(5)) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn offline_cores_count_as_idle_in_utilization() {
        let mut c = Cluster::new(SimTime::ZERO, 10);
        c.take_offline(SimTime::ZERO, 10);
        c.bring_online(SimTime::from_secs(30), 10);
        assert!((c.utilization(SimTime::from_secs(30)) - 0.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "busy cores offline")]
    fn take_offline_requires_free_cores() {
        let mut c = Cluster::new(SimTime::ZERO, 10);
        c.acquire(SimTime::ZERO, 8);
        c.take_offline(SimTime::ZERO, 3);
    }
}
