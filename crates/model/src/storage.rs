//! Site storage systems: scratch filesystem and archive.
//!
//! Prices data-staging operations (used by the data-movement usage modality
//! and by workflow stage-in/stage-out) and tracks occupancy against quota.
//! Bandwidth is shared fairly but without queueing detail: a transfer of
//! `mb` at bandwidth `bw` takes `mb / bw` seconds regardless of concurrent
//! transfers — adequate for the latency scales the experiments measure.

use serde::{Deserialize, Serialize};
use tg_des::SimDuration;

/// One storage tier (scratch or archive).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageTier {
    /// Capacity in GB.
    pub capacity_gb: f64,
    /// Bandwidth in MB/s.
    pub bandwidth_mbps: f64,
    /// Currently used GB.
    used_gb: f64,
}

impl StorageTier {
    /// An empty tier.
    pub fn new(capacity_gb: f64, bandwidth_mbps: f64) -> Self {
        assert!(capacity_gb > 0.0 && bandwidth_mbps > 0.0, "bad tier params");
        StorageTier {
            capacity_gb,
            bandwidth_mbps,
            used_gb: 0.0,
        }
    }

    /// Occupied GB.
    pub fn used_gb(&self) -> f64 {
        self.used_gb
    }

    /// Free GB.
    pub fn free_gb(&self) -> f64 {
        (self.capacity_gb - self.used_gb).max(0.0)
    }

    /// Occupancy fraction in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        (self.used_gb / self.capacity_gb).clamp(0.0, 1.0)
    }

    /// Try to reserve `gb`; `false` if it would exceed capacity.
    pub fn reserve(&mut self, gb: f64) -> bool {
        assert!(gb >= 0.0, "negative reservation");
        if self.used_gb + gb > self.capacity_gb {
            return false;
        }
        self.used_gb += gb;
        true
    }

    /// Release `gb` (clamped at zero).
    pub fn release(&mut self, gb: f64) {
        assert!(gb >= 0.0, "negative release");
        self.used_gb = (self.used_gb - gb).max(0.0);
    }

    /// Time to read or write `mb` megabytes.
    pub fn io_time(&self, mb: f64) -> SimDuration {
        assert!(mb >= 0.0, "negative IO size");
        SimDuration::from_secs_f64(mb / self.bandwidth_mbps)
    }
}

/// A site's storage: scratch + archive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Storage {
    /// The parallel scratch filesystem.
    pub scratch: StorageTier,
    /// The archival (tape-like) tier.
    pub archive: StorageTier,
}

impl Storage {
    /// Storage with the given scratch/archive bandwidths and default
    /// capacities (100 TB scratch, 1 PB archive).
    pub fn new(scratch_bw_mbps: f64, archive_bw_mbps: f64) -> Self {
        Storage {
            scratch: StorageTier::new(100_000.0, scratch_bw_mbps),
            archive: StorageTier::new(1_000_000.0, archive_bw_mbps),
        }
    }

    /// Time to stage `mb` from scratch into an archive (max of read+write,
    /// pipelined → the slower side dominates).
    pub fn archive_time(&self, mb: f64) -> SimDuration {
        self.scratch.io_time(mb).max(self.archive.io_time(mb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let mut t = StorageTier::new(100.0, 1000.0);
        assert!(t.reserve(60.0));
        assert!(!t.reserve(50.0), "over quota");
        assert_eq!(t.used_gb(), 60.0);
        assert!((t.occupancy() - 0.6).abs() < 1e-12);
        t.release(100.0); // clamped
        assert_eq!(t.used_gb(), 0.0);
        assert_eq!(t.free_gb(), 100.0);
    }

    #[test]
    fn io_time_scales_with_size() {
        let t = StorageTier::new(100.0, 500.0);
        assert!((t.io_time(1000.0).as_secs_f64() - 2.0).abs() < 1e-9);
        assert_eq!(t.io_time(0.0), SimDuration::ZERO);
    }

    #[test]
    fn archive_time_is_bottleneck_side() {
        let s = Storage::new(2000.0, 200.0);
        // 2000 MB: scratch 1 s, archive 10 s → 10 s.
        assert!((s.archive_time(2000.0).as_secs_f64() - 10.0).abs() < 1e-9);
    }
}
