//! The assembled federation: sites + network + configuration library.

use crate::config::{ConfigLibrary, SiteConfig};
use crate::ids::{ConfigId, SiteId};
use crate::network::{Network, Uplink};
use crate::site::Site;
use tg_des::{SimDuration, SimTime};

/// The whole modeled cyberinfrastructure.
#[derive(Debug, Clone)]
pub struct Federation {
    sites: Vec<Site>,
    /// The wide-area network connecting sites.
    pub network: Network,
    /// Library of reconfigurable processor configurations.
    pub library: ConfigLibrary,
}

impl Federation {
    /// Start building a federation.
    pub fn builder() -> FederationBuilder {
        FederationBuilder::default()
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True if the federation has no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Immutable site access.
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.index()]
    }

    /// Mutable site access.
    pub fn site_mut(&mut self, id: SiteId) -> &mut Site {
        &mut self.sites[id.index()]
    }

    /// Iterate sites.
    pub fn sites(&self) -> impl Iterator<Item = &Site> {
        self.sites.iter()
    }

    /// All site ids.
    pub fn site_ids(&self) -> impl Iterator<Item = SiteId> {
        (0..self.sites.len()).map(SiteId)
    }

    /// Total batch cores across the federation.
    pub fn total_cores(&self) -> usize {
        self.sites.iter().map(|s| s.cluster.total_cores()).sum()
    }

    /// Time to fetch `config`'s bitstream from the repository to `dst`
    /// (zero if it would be a local/no-repository fetch).
    pub fn bitstream_fetch_time(&self, config: ConfigId, dst: SiteId) -> SimDuration {
        let mb = self.library.get(config).bitstream_mb;
        self.network.fetch_from_repository(dst, mb)
    }

    /// Federation-wide average batch utilization at `now`, weighted by cores.
    pub fn average_utilization(&self, now: SimTime) -> f64 {
        let total: f64 = self
            .sites
            .iter()
            .map(|s| s.cluster.utilization(now) * s.cluster.total_cores() as f64)
            .sum();
        total / self.total_cores().max(1) as f64
    }
}

/// Builder assembling a [`Federation`] site by site.
#[derive(Debug, Default)]
pub struct FederationBuilder {
    site_configs: Vec<SiteConfig>,
    library: ConfigLibrary,
    repository: Option<usize>,
    start: SimTime,
}

impl FederationBuilder {
    /// Set the simulation start time state tracking begins at (default zero).
    pub fn start_at(mut self, start: SimTime) -> Self {
        self.start = start;
        self
    }

    /// Add a site; returns the builder for chaining. Site ids are assigned
    /// in insertion order.
    pub fn site(mut self, config: SiteConfig) -> Self {
        self.site_configs.push(config);
        self
    }

    /// Use `library` as the configuration library.
    pub fn library(mut self, library: ConfigLibrary) -> Self {
        self.library = library;
        self
    }

    /// Host the bitstream repository at the site added at `index`.
    pub fn repository_at(mut self, index: usize) -> Self {
        self.repository = Some(index);
        self
    }

    /// Assemble the federation. Panics if no sites were added or the
    /// repository index is out of range.
    pub fn build(self) -> Federation {
        assert!(!self.site_configs.is_empty(), "federation needs sites");
        let mut network = Network::new();
        let mut sites = Vec::with_capacity(self.site_configs.len());
        for (i, cfg) in self.site_configs.into_iter().enumerate() {
            network.add_uplink(Uplink::new(cfg.wan_bandwidth_mbps, cfg.wan_latency_ms));
            sites.push(Site::from_config(SiteId(i), cfg, self.start));
        }
        if let Some(repo) = self.repository {
            network.set_repository(SiteId(repo));
        }
        Federation {
            sites,
            network,
            library: self.library,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProcessorConfig;

    fn demo() -> Federation {
        let mut lib = ConfigLibrary::new();
        lib.add(ProcessorConfig::new("sw", 4, 20.0));
        Federation::builder()
            .site(SiteConfig::medium("alpha"))
            .site(SiteConfig::large("beta"))
            .site(SiteConfig::rc_site("gamma", 8, 8))
            .library(lib)
            .repository_at(0)
            .build()
    }

    #[test]
    fn builder_assigns_ids_in_order() {
        let f = demo();
        assert_eq!(f.len(), 3);
        assert_eq!(f.site(SiteId(0)).name(), "alpha");
        assert_eq!(f.site(SiteId(2)).name(), "gamma");
        assert!(f.site(SiteId(2)).has_rc());
        assert_eq!(f.network.repository(), Some(SiteId(0)));
        assert_eq!(
            f.site_ids().collect::<Vec<_>>(),
            vec![SiteId(0), SiteId(1), SiteId(2)]
        );
    }

    #[test]
    fn totals_aggregate_sites() {
        let f = demo();
        let expect = SiteConfig::medium("x").total_cores()
            + SiteConfig::large("x").total_cores()
            + SiteConfig::rc_site("x", 8, 8).total_cores();
        assert_eq!(f.total_cores(), expect);
    }

    #[test]
    fn bitstream_fetch_time_is_zero_at_repository_site() {
        let f = demo();
        assert_eq!(
            f.bitstream_fetch_time(ConfigId(0), SiteId(0)),
            SimDuration::ZERO
        );
        assert!(f.bitstream_fetch_time(ConfigId(0), SiteId(2)) > SimDuration::ZERO);
    }

    #[test]
    fn utilization_starts_at_zero() {
        let mut f = demo();
        assert_eq!(f.average_utilization(SimTime::from_secs(100)), 0.0);
        let cores = f.site(SiteId(0)).cluster.total_cores();
        f.site_mut(SiteId(0)).cluster.acquire(SimTime::ZERO, cores);
        let u = f.average_utilization(SimTime::from_secs(100));
        assert!(u > 0.0 && u < 1.0);
    }

    #[test]
    #[should_panic(expected = "federation needs sites")]
    fn empty_build_panics() {
        let _ = Federation::builder().build();
    }
}
