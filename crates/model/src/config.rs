//! Serializable scenario descriptions: site hardware, network parameters,
//! and the library of reconfigurable processor configurations.

use crate::ids::ConfigId;
use serde::{Deserialize, Serialize};
use tg_des::SimDuration;

/// Static description of one compute site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteConfig {
    /// Human-readable site name (e.g. `"ranger"`, `"kraken"`).
    pub name: String,
    /// Number of nodes in the space-shared batch partition.
    pub batch_nodes: usize,
    /// Cores per batch node.
    pub cores_per_node: usize,
    /// Service-unit charge factor: SUs charged per core-hour. TeraGrid sites
    /// charged different factors to normalize heterogeneous hardware.
    pub charge_factor: f64,
    /// Relative per-core speed (1.0 = reference hardware); scales runtimes.
    pub core_speed: f64,
    /// Number of reconfigurable (FPGA) nodes in the RC partition (0 = none).
    pub rc_nodes: usize,
    /// FPGA area units per reconfigurable node.
    pub rc_area_per_node: u32,
    /// Bitstreams each RC node's local cache retains (0 disables caching —
    /// every reconfiguration refetches from the repository).
    pub rc_bitstream_cache: usize,
    /// Uplink bandwidth to the federation backbone, in MB/s.
    pub wan_bandwidth_mbps: f64,
    /// One-way WAN latency to the backbone hub, in milliseconds.
    pub wan_latency_ms: f64,
    /// Scratch storage read/write bandwidth, MB/s (staging model).
    pub storage_bandwidth_mbps: f64,
    /// Archive (tape) bandwidth, MB/s.
    pub archive_bandwidth_mbps: f64,
    /// Dataset cache capacity on scratch, in MB (data-grid scenarios).
    /// 0 disables caching at this site — every non-permanent access
    /// refetches over the WAN.
    #[serde(default)]
    pub data_cache_mb: f64,
}

impl SiteConfig {
    /// A medium HPC site with sensible 2010-era defaults and no RC partition.
    pub fn medium(name: impl Into<String>) -> Self {
        SiteConfig {
            name: name.into(),
            batch_nodes: 512,
            cores_per_node: 8,
            charge_factor: 1.0,
            core_speed: 1.0,
            rc_nodes: 0,
            rc_area_per_node: 0,
            rc_bitstream_cache: 8,
            wan_bandwidth_mbps: 1250.0, // 10 Gb/s
            wan_latency_ms: 20.0,
            storage_bandwidth_mbps: 2000.0,
            archive_bandwidth_mbps: 200.0,
            data_cache_mb: 0.0,
        }
    }

    /// A large capability site (Kraken-like).
    pub fn large(name: impl Into<String>) -> Self {
        SiteConfig {
            batch_nodes: 8 * 1024,
            cores_per_node: 12,
            charge_factor: 1.1,
            core_speed: 1.2,
            ..SiteConfig::medium(name)
        }
    }

    /// A small site with an attached reconfigurable partition.
    pub fn rc_site(name: impl Into<String>, rc_nodes: usize, area: u32) -> Self {
        SiteConfig {
            batch_nodes: 128,
            rc_nodes,
            rc_area_per_node: area,
            ..SiteConfig::medium(name)
        }
    }

    /// Total batch cores at the site.
    pub fn total_cores(&self) -> usize {
        self.batch_nodes * self.cores_per_node
    }
}

/// One reconfigurable processor configuration (a bitstream type).
///
/// The characteristics are the ones the reconfigurable-grid simulation
/// literature names as absent from traditional simulators: area utilization,
/// performance increase, reconfiguration time, and the time to transfer the
/// configuration bitstream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessorConfig {
    /// Configuration name (e.g. `"smith-waterman"`, `"fft-1d"`).
    pub name: String,
    /// FPGA area units this configuration occupies on a node.
    pub area: u32,
    /// Bitstream size in MB (transferred from the repository on a miss).
    pub bitstream_mb: f64,
    /// Speedup of the hardware implementation relative to the software
    /// (GPP) implementation of the same task (> 1 means faster).
    pub speedup: f64,
    /// Time to reconfigure a region of the fabric with this bitstream once
    /// it is locally available.
    pub reconfig_time: SimDuration,
}

impl ProcessorConfig {
    /// A configuration with the given name/area/speedup and default
    /// 100 ms reconfiguration, 16 MB bitstream.
    pub fn new(name: impl Into<String>, area: u32, speedup: f64) -> Self {
        assert!(area > 0, "configuration area must be positive");
        assert!(speedup > 0.0, "speedup must be positive");
        ProcessorConfig {
            name: name.into(),
            area,
            bitstream_mb: 16.0,
            speedup,
            reconfig_time: SimDuration::from_millis(100),
        }
    }
}

/// The library of processor configurations known to the federation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConfigLibrary {
    configs: Vec<ProcessorConfig>,
}

impl ConfigLibrary {
    /// An empty library.
    pub fn new() -> Self {
        ConfigLibrary::default()
    }

    /// Register a configuration; returns its id.
    pub fn add(&mut self, cfg: ProcessorConfig) -> ConfigId {
        let id = ConfigId(self.configs.len());
        self.configs.push(cfg);
        id
    }

    /// Look up a configuration. Panics on a dangling id (a model bug).
    pub fn get(&self, id: ConfigId) -> &ProcessorConfig {
        &self.configs[id.index()]
    }

    /// Number of configurations.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// True if no configurations are registered.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Iterate `(id, config)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ConfigId, &ProcessorConfig)> {
        self.configs
            .iter()
            .enumerate()
            .map(|(i, c)| (ConfigId(i), c))
    }

    /// A demo library of `n` synthetic kernels with areas cycling through
    /// {2, 3, 4} (on nodes of area ~8) and speedups in [4, 40].
    pub fn synthetic(n: usize) -> Self {
        let mut lib = ConfigLibrary::new();
        for i in 0..n {
            let area = 2 + (i % 3) as u32;
            let speedup = 4.0 + 36.0 * (i as f64 / n.max(1) as f64);
            let mut cfg = ProcessorConfig::new(format!("kernel-{i}"), area, speedup);
            cfg.bitstream_mb = 8.0 + 4.0 * (i % 5) as f64;
            lib.add(cfg);
        }
        lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_presets_are_consistent() {
        let m = SiteConfig::medium("alpha");
        assert_eq!(m.total_cores(), 4096);
        assert_eq!(m.rc_nodes, 0);
        let l = SiteConfig::large("beta");
        assert!(l.total_cores() > m.total_cores());
        let r = SiteConfig::rc_site("gamma", 16, 8);
        assert_eq!(r.rc_nodes, 16);
        assert_eq!(r.rc_area_per_node, 8);
    }

    #[test]
    fn library_add_get_iter() {
        let mut lib = ConfigLibrary::new();
        assert!(lib.is_empty());
        let a = lib.add(ProcessorConfig::new("sw", 4, 20.0));
        let b = lib.add(ProcessorConfig::new("fft", 2, 8.0));
        assert_eq!(lib.len(), 2);
        assert_eq!(lib.get(a).name, "sw");
        assert_eq!(lib.get(b).area, 2);
        let names: Vec<_> = lib.iter().map(|(_, c)| c.name.as_str()).collect();
        assert_eq!(names, vec!["sw", "fft"]);
    }

    #[test]
    fn synthetic_library_properties() {
        let lib = ConfigLibrary::synthetic(10);
        assert_eq!(lib.len(), 10);
        for (_, c) in lib.iter() {
            assert!((2..=4).contains(&c.area));
            assert!(c.speedup >= 4.0 && c.speedup <= 40.0);
            assert!(c.bitstream_mb > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "area must be positive")]
    fn zero_area_config_rejected() {
        ProcessorConfig::new("bad", 0, 2.0);
    }

    #[test]
    fn config_serde_roundtrip() {
        let cfg = ProcessorConfig::new("sw", 4, 20.0);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ProcessorConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
        let site = SiteConfig::rc_site("x", 4, 8);
        let json = serde_json::to_string(&site).unwrap();
        let back: SiteConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(site, back);
    }
}
