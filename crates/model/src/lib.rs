//! # tg-model — the federated-grid resource model
//!
//! A passive (state + queries, no event logic) model of a TeraGrid-like
//! cyberinfrastructure federation:
//!
//! * [`ids`] — strongly-typed identifiers shared by the upper layers.
//! * [`site`] / [`cluster`] — compute sites, each with a space-shared batch
//!   partition tracked at core granularity.
//! * [`reconf`] — the reconfigurable-node extension the calibration bands
//!   call out: per-node FPGA area, loaded-configuration tracking, bitstream
//!   caching, reconfiguration cost accounting, and wasted-area statistics.
//! * [`network`] — inter-site links with latency + bandwidth, used for data
//!   staging and configuration-bitstream transfer times.
//! * [`storage`] — scratch and archive systems with staging-time models.
//! * [`config`] — `serde`-serializable scenario descriptions for all of the
//!   above, plus a [`config::ConfigLibrary`] of processor configurations
//!   (area, bitstream size, speedup) that reconfigurable tasks reference.
//! * [`federation`] — the assembled model and its builder.
//!
//! Dynamics — who runs when, queueing, reconfiguration decisions — live in
//! `tg-sched` and `tg-core`; this crate only answers "what exists, what is
//! free, what would that cost".
//!
//! ```
//! use tg_des::SimTime;
//! use tg_model::config::ProcessorConfig;
//! use tg_model::{ConfigLibrary, Federation, SiteConfig};
//!
//! let mut library = ConfigLibrary::new();
//! let kernel = library.add(ProcessorConfig::new("smith-waterman", 4, 20.0));
//!
//! let mut fed = Federation::builder()
//!     .site(SiteConfig::medium("alpha"))
//!     .site(SiteConfig::rc_site("gamma", 8, 8))
//!     .library(library)
//!     .repository_at(0)
//!     .build();
//!
//! // Host the kernel on the RC partition: plan, price, commit, finish.
//! use tg_model::{NodeId, SiteId};
//! let site = SiteId(1);
//! let lib = fed.library.clone();
//! let node = fed.site_mut(site).rc.node_mut(NodeId(0));
//! let plan = node.plan(kernel, &lib);
//! let region = node.commit(plan, kernel, &lib, SimTime::ZERO);
//! node.finish(region, SimTime::from_secs(120));
//! assert_eq!(node.stats().completed, 1);
//! assert!(node.has_idle_config(kernel), "region stays reusable");
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cluster;
pub mod config;
pub mod federation;
pub mod ids;
pub mod network;
pub mod reconf;
pub mod site;
pub mod storage;

pub use cluster::Cluster;
pub use config::{ConfigLibrary, ProcessorConfig, SiteConfig};
pub use federation::{Federation, FederationBuilder};
pub use ids::{ConfigId, NodeId, SiteId};
pub use network::{LinkDegradation, Network};
pub use reconf::{RcNode, RcPartition, ReconfCost};
pub use site::Site;
pub use storage::Storage;
