//! Strongly-typed identifiers.
//!
//! Index-style newtypes (`usize`-backed) prevent the classic "passed a node
//! index where a site index was expected" bug without runtime cost.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! index_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub usize);

        impl $name {
            /// The raw index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(i: usize) -> Self {
                $name(i)
            }
        }
    };
}

index_id!(
    /// A compute site (resource provider) within the federation.
    SiteId,
    "site"
);

index_id!(
    /// A reconfigurable node within one site's RC partition.
    ///
    /// Node ids are site-local; `(SiteId, NodeId)` is globally unique.
    NodeId,
    "node"
);

index_id!(
    /// A processor configuration (FPGA bitstream type) in the
    /// [`crate::config::ConfigLibrary`].
    ConfigId,
    "cfg"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(SiteId(3).to_string(), "site3");
        assert_eq!(NodeId(0).to_string(), "node0");
        assert_eq!(ConfigId(12).to_string(), "cfg12");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(SiteId(1));
        s.insert(SiteId(1));
        s.insert(SiteId(2));
        assert_eq!(s.len(), 2);
        assert!(SiteId(1) < SiteId(2));
        assert_eq!(SiteId::from(7).index(), 7);
    }
}
