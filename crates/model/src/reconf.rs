//! Reconfigurable (FPGA) node modeling.
//!
//! This is the simulator extension the calibration notes identify as absent
//! from traditional grid simulators. Each reconfigurable node has a fabric of
//! `area_total` area units. Hosting a task's hardware kernel requires a
//! *region* configured with the kernel's [`ProcessorConfig`]; getting one
//! costs, in the worst case:
//!
//! 1. **bitstream transfer** from the configuration repository, unless the
//!    node's local bitstream cache already holds it, then
//! 2. **fabric reconfiguration** of a free region, possibly after evicting
//!    idle (configured-but-unused) regions in LRU order, unless
//! 3. an **idle region with the same configuration** can simply be reused —
//!    the big win reconfiguration-aware scheduling chases.
//!
//! The node exposes a two-phase *plan / commit* API so a scheduler can price
//! a placement (via [`RcNode::plan`] and [`ReconfCost`]) before committing
//! it; committing reserves the region immediately, so concurrent decisions
//! never double-book fabric.
//!
//! Per-node statistics track exactly the quantities the evaluation sweeps
//! report: reuse / reconfiguration / transfer counts and the **wasted-area
//! integral** (configured-but-idle area × time).
//!
//! [`ProcessorConfig`]: crate::config::ProcessorConfig

use crate::config::ConfigLibrary;
use crate::ids::{ConfigId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use tg_des::stats::TimeWeighted;
use tg_des::{SimDuration, SimTime};

/// A configured region of one node's fabric.
#[derive(Debug, Clone, PartialEq)]
struct Region {
    config: ConfigId,
    area: u32,
    busy: bool,
    last_used: SimTime,
}

/// Identifies a region slot within one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionId(usize);

/// What hosting a configuration on a node would involve.
#[derive(Debug, Clone, PartialEq)]
pub enum HostPlan {
    /// An idle region already holds the configuration — reuse it for free.
    Reuse(RegionId),
    /// Configure a fresh region, evicting the listed idle regions first.
    Configure {
        /// Idle regions to evict (possibly empty).
        evict: Vec<RegionId>,
        /// Whether the bitstream must be fetched from the repository.
        fetch_bitstream: bool,
    },
    /// The node cannot host this configuration even after evicting
    /// everything idle.
    Infeasible,
}

/// The latency decomposition of committing a [`HostPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReconfCost {
    /// Bitstream transfer time (zero on a cache hit or reuse).
    pub transfer: SimDuration,
    /// Fabric reconfiguration time (zero on reuse).
    pub reconfig: SimDuration,
}

impl ReconfCost {
    /// Total setup latency before the task can start.
    pub fn total(&self) -> SimDuration {
        self.transfer + self.reconfig
    }
}

/// Counters and integrals one node accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RcNodeStats {
    /// Placements satisfied by reusing an idle configured region.
    pub reuses: u64,
    /// Fabric reconfigurations performed.
    pub reconfigs: u64,
    /// Bitstream fetches from the repository (cache misses).
    pub bitstream_fetches: u64,
    /// Bitstream cache hits on reconfiguration.
    pub bitstream_hits: u64,
    /// Idle regions evicted to make room.
    pub evictions: u64,
    /// Tasks hosted to completion.
    pub completed: u64,
}

/// One reconfigurable node.
#[derive(Debug, Clone)]
pub struct RcNode {
    id: NodeId,
    area_total: u32,
    regions: Vec<Option<Region>>,
    bitstream_cache: HashSet<ConfigId>,
    cache_capacity: usize,
    cache_order: Vec<ConfigId>, // LRU order, oldest first
    busy_area: TimeWeighted,
    configured_area: TimeWeighted,
    stats: RcNodeStats,
}

impl RcNode {
    /// A node with `area_total` fabric units and a bitstream cache holding up
    /// to `cache_capacity` bitstreams (0 disables caching).
    pub fn new(id: NodeId, start: SimTime, area_total: u32, cache_capacity: usize) -> Self {
        assert!(area_total > 0, "node must have fabric area");
        RcNode {
            id,
            area_total,
            regions: Vec::new(),
            bitstream_cache: HashSet::new(),
            cache_capacity,
            cache_order: Vec::new(),
            busy_area: TimeWeighted::new(start, 0.0),
            configured_area: TimeWeighted::new(start, 0.0),
            stats: RcNodeStats::default(),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Total fabric area.
    pub fn area_total(&self) -> u32 {
        self.area_total
    }

    /// Area not occupied by any configured region.
    pub fn free_area(&self) -> u32 {
        self.area_total - self.configured_area_now()
    }

    /// Area occupied by configured regions (busy or idle).
    pub fn configured_area_now(&self) -> u32 {
        self.regions.iter().flatten().map(|r| r.area).sum()
    }

    /// Area occupied by regions currently executing tasks.
    pub fn busy_area_now(&self) -> u32 {
        self.regions
            .iter()
            .flatten()
            .filter(|r| r.busy)
            .map(|r| r.area)
            .sum()
    }

    /// Area configured but idle (reusable or evictable).
    pub fn idle_area_now(&self) -> u32 {
        self.configured_area_now() - self.busy_area_now()
    }

    /// Does the local cache hold `config`'s bitstream?
    pub fn has_bitstream(&self, config: ConfigId) -> bool {
        self.bitstream_cache.contains(&config)
    }

    /// Is any idle region configured with `config`?
    pub fn has_idle_config(&self, config: ConfigId) -> bool {
        self.regions
            .iter()
            .flatten()
            .any(|r| !r.busy && r.config == config)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> RcNodeStats {
        self.stats
    }

    /// Integral of busy area over time (area·seconds).
    pub fn busy_area_integral(&self, now: SimTime) -> f64 {
        self.busy_area.integral(now)
    }

    /// Integral of *wasted* area over time: configured-but-idle area·seconds.
    /// This is the headline waste metric of the packing experiments.
    pub fn wasted_area_integral(&self, now: SimTime) -> f64 {
        self.configured_area.integral(now) - self.busy_area.integral(now)
    }

    /// Plan how to host `config` (looked up in `lib` for its area).
    ///
    /// Preference order: reuse an idle identical region; otherwise configure
    /// a new region in free area; otherwise evict idle regions LRU-first
    /// until it fits; otherwise infeasible.
    pub fn plan(&self, config: ConfigId, lib: &ConfigLibrary) -> HostPlan {
        // 1. Reuse.
        if let Some((i, _)) = self
            .regions
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|r| (i, r)))
            .filter(|(_, r)| !r.busy && r.config == config)
            .max_by_key(|(_, r)| r.last_used)
        {
            return HostPlan::Reuse(RegionId(i));
        }
        let need = lib.get(config).area;
        if need > self.area_total {
            return HostPlan::Infeasible;
        }
        let fetch_bitstream = !self.has_bitstream(config);
        // 2. Fits in free area.
        if need <= self.free_area() {
            return HostPlan::Configure {
                evict: Vec::new(),
                fetch_bitstream,
            };
        }
        // 3. Evict idle regions, least-recently-used first.
        let mut idle: Vec<(usize, SimTime, u32)> = self
            .regions
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|r| (i, r)))
            .filter(|(_, r)| !r.busy)
            .map(|(i, r)| (i, r.last_used, r.area))
            .collect();
        idle.sort_by_key(|&(_, t, _)| t);
        let mut freed = self.free_area();
        let mut evict = Vec::new();
        for (i, _, area) in idle {
            if freed >= need {
                break;
            }
            evict.push(RegionId(i));
            freed += area;
        }
        if freed >= need {
            HostPlan::Configure {
                evict,
                fetch_bitstream,
            }
        } else {
            HostPlan::Infeasible
        }
    }

    /// The setup latency of a plan, pricing transfer via `transfer_time` (the
    /// caller supplies it from the network model).
    pub fn cost_of(
        &self,
        plan: &HostPlan,
        config: ConfigId,
        lib: &ConfigLibrary,
        transfer_time: SimDuration,
    ) -> ReconfCost {
        match plan {
            HostPlan::Reuse(_) => ReconfCost::default(),
            HostPlan::Configure {
                fetch_bitstream, ..
            } => ReconfCost {
                transfer: if *fetch_bitstream {
                    transfer_time
                } else {
                    SimDuration::ZERO
                },
                reconfig: lib.get(config).reconfig_time,
            },
            HostPlan::Infeasible => ReconfCost::default(),
        }
    }

    /// Commit a plan at `now`: reserve/configure the region and mark it busy.
    /// Returns the region now hosting the task.
    ///
    /// Panics if the plan is [`HostPlan::Infeasible`] or stale (the region
    /// set changed since planning) — schedulers must re-plan after any
    /// intervening commit to this node.
    pub fn commit(
        &mut self,
        plan: HostPlan,
        config: ConfigId,
        lib: &ConfigLibrary,
        now: SimTime,
    ) -> RegionId {
        match plan {
            HostPlan::Reuse(rid) => {
                let region = self.regions[rid.0]
                    .as_mut()
                    .expect("stale plan: region vanished");
                assert!(
                    !region.busy && region.config == config,
                    "stale plan: region changed"
                );
                region.busy = true;
                region.last_used = now;
                self.stats.reuses += 1;
                self.sync_area(now);
                rid
            }
            HostPlan::Configure {
                evict,
                fetch_bitstream,
            } => {
                for rid in &evict {
                    let r = self.regions[rid.0]
                        .take()
                        .expect("stale plan: eviction target vanished");
                    assert!(!r.busy, "stale plan: eviction target became busy");
                    self.stats.evictions += 1;
                }
                let need = lib.get(config).area;
                assert!(
                    need <= self.free_area(),
                    "stale plan: insufficient area after evictions"
                );
                if fetch_bitstream {
                    self.stats.bitstream_fetches += 1;
                    self.cache_insert(config);
                } else {
                    self.stats.bitstream_hits += 1;
                    self.cache_touch(config);
                }
                self.stats.reconfigs += 1;
                let region = Region {
                    config,
                    area: need,
                    busy: true,
                    last_used: now,
                };
                let rid = self.insert_region(region);
                self.sync_area(now);
                rid
            }
            HostPlan::Infeasible => panic!("committed an infeasible plan"),
        }
    }

    /// Finish the task on `region` at `now`. The region stays configured and
    /// becomes reusable.
    pub fn finish(&mut self, region: RegionId, now: SimTime) {
        let r = self.regions[region.0]
            .as_mut()
            .expect("finish on empty region slot");
        assert!(r.busy, "finish on idle region");
        r.busy = false;
        r.last_used = now;
        self.stats.completed += 1;
        self.sync_area(now);
    }

    fn insert_region(&mut self, region: Region) -> RegionId {
        if let Some(i) = self.regions.iter().position(Option::is_none) {
            self.regions[i] = Some(region);
            RegionId(i)
        } else {
            self.regions.push(Some(region));
            RegionId(self.regions.len() - 1)
        }
    }

    fn cache_insert(&mut self, config: ConfigId) {
        if self.cache_capacity == 0 {
            return;
        }
        if self.bitstream_cache.insert(config) {
            self.cache_order.push(config);
            if self.bitstream_cache.len() > self.cache_capacity {
                let victim = self.cache_order.remove(0);
                self.bitstream_cache.remove(&victim);
            }
        } else {
            self.cache_touch(config);
        }
    }

    fn cache_touch(&mut self, config: ConfigId) {
        if let Some(pos) = self.cache_order.iter().position(|&c| c == config) {
            self.cache_order.remove(pos);
            self.cache_order.push(config);
        }
    }

    fn sync_area(&mut self, now: SimTime) {
        self.busy_area.set(now, self.busy_area_now() as f64);
        self.configured_area
            .set(now, self.configured_area_now() as f64);
    }
}

/// A site's pool of reconfigurable nodes.
#[derive(Debug, Clone)]
pub struct RcPartition {
    nodes: Vec<RcNode>,
}

impl RcPartition {
    /// `count` identical nodes of `area_per_node` fabric units each.
    pub fn new(start: SimTime, count: usize, area_per_node: u32, cache_capacity: usize) -> Self {
        let nodes = (0..count)
            .map(|i| RcNode::new(NodeId(i), start, area_per_node, cache_capacity))
            .collect();
        RcPartition { nodes }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the partition has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable node access.
    pub fn node(&self, id: NodeId) -> &RcNode {
        &self.nodes[id.index()]
    }

    /// Mutable node access.
    pub fn node_mut(&mut self, id: NodeId) -> &mut RcNode {
        &mut self.nodes[id.index()]
    }

    /// Iterate nodes.
    pub fn iter(&self) -> impl Iterator<Item = &RcNode> {
        self.nodes.iter()
    }

    /// Sum of per-node statistics.
    pub fn total_stats(&self) -> RcNodeStats {
        let mut acc = RcNodeStats::default();
        for n in &self.nodes {
            acc.reuses += n.stats.reuses;
            acc.reconfigs += n.stats.reconfigs;
            acc.bitstream_fetches += n.stats.bitstream_fetches;
            acc.bitstream_hits += n.stats.bitstream_hits;
            acc.evictions += n.stats.evictions;
            acc.completed += n.stats.completed;
        }
        acc
    }

    /// Partition-wide wasted-area integral (area·seconds).
    pub fn wasted_area_integral(&self, now: SimTime) -> f64 {
        self.nodes.iter().map(|n| n.wasted_area_integral(now)).sum()
    }

    /// Partition-wide busy-area integral (area·seconds).
    pub fn busy_area_integral(&self, now: SimTime) -> f64 {
        self.nodes.iter().map(|n| n.busy_area_integral(now)).sum()
    }

    /// Total fabric area across nodes.
    pub fn total_area(&self) -> u64 {
        self.nodes.iter().map(|n| n.area_total() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProcessorConfig;

    fn lib2() -> (ConfigLibrary, ConfigId, ConfigId) {
        let mut lib = ConfigLibrary::new();
        let a = lib.add(ProcessorConfig::new("a", 4, 10.0));
        let b = lib.add(ProcessorConfig::new("b", 6, 5.0));
        (lib, a, b)
    }

    #[test]
    fn fresh_node_configures_with_fetch() {
        let (lib, a, _) = lib2();
        let mut n = RcNode::new(NodeId(0), SimTime::ZERO, 8, 4);
        let plan = n.plan(a, &lib);
        assert_eq!(
            plan,
            HostPlan::Configure {
                evict: vec![],
                fetch_bitstream: true
            }
        );
        let cost = n.cost_of(&plan, a, &lib, SimDuration::from_secs(2));
        assert_eq!(cost.transfer, SimDuration::from_secs(2));
        assert_eq!(cost.reconfig, SimDuration::from_millis(100));
        assert_eq!(cost.total(), SimDuration::from_millis(2100));
        n.commit(plan, a, &lib, SimTime::ZERO);
        assert_eq!(n.busy_area_now(), 4);
        assert_eq!(n.free_area(), 4);
        assert_eq!(n.stats().bitstream_fetches, 1);
        assert_eq!(n.stats().reconfigs, 1);
    }

    #[test]
    fn reuse_is_free_and_preferred() {
        let (lib, a, _) = lib2();
        let mut n = RcNode::new(NodeId(0), SimTime::ZERO, 8, 4);
        let rid = n.commit(n.plan(a, &lib), a, &lib, SimTime::ZERO);
        n.finish(rid, SimTime::from_secs(10));
        let plan = n.plan(a, &lib);
        assert!(matches!(plan, HostPlan::Reuse(_)));
        let cost = n.cost_of(&plan, a, &lib, SimDuration::from_secs(2));
        assert_eq!(cost.total(), SimDuration::ZERO);
        n.commit(plan, a, &lib, SimTime::from_secs(10));
        assert_eq!(n.stats().reuses, 1);
        assert_eq!(n.stats().reconfigs, 1, "no second reconfiguration");
    }

    #[test]
    fn bitstream_cache_hit_skips_transfer() {
        let (lib, a, b) = lib2();
        let mut n = RcNode::new(NodeId(0), SimTime::ZERO, 8, 4);
        // Host a, finish it, host b to force a's region... area 8: a(4)+b(6)
        // won't coexist, so hosting b evicts a; re-hosting a then hits cache.
        let r = n.commit(n.plan(a, &lib), a, &lib, SimTime::ZERO);
        n.finish(r, SimTime::from_secs(1));
        let plan_b = n.plan(b, &lib);
        assert!(
            matches!(&plan_b, HostPlan::Configure { evict, .. } if evict.len() == 1),
            "hosting b must evict a's idle region: {plan_b:?}"
        );
        let rb = n.commit(plan_b, b, &lib, SimTime::from_secs(1));
        n.finish(rb, SimTime::from_secs(2));
        let plan_a2 = n.plan(a, &lib);
        match &plan_a2 {
            HostPlan::Configure {
                fetch_bitstream, ..
            } => assert!(!fetch_bitstream, "bitstream for a is cached"),
            other => panic!("expected configure, got {other:?}"),
        }
        let cost = n.cost_of(&plan_a2, a, &lib, SimDuration::from_secs(5));
        assert_eq!(cost.transfer, SimDuration::ZERO);
        n.commit(plan_a2, a, &lib, SimTime::from_secs(2));
        assert_eq!(n.stats().bitstream_hits, 1);
        assert_eq!(n.stats().evictions, 2, "a evicted for b, b evicted for a");
    }

    #[test]
    fn zero_capacity_cache_always_fetches() {
        let (lib, a, b) = lib2();
        let mut n = RcNode::new(NodeId(0), SimTime::ZERO, 8, 0);
        let r = n.commit(n.plan(a, &lib), a, &lib, SimTime::ZERO);
        n.finish(r, SimTime::from_secs(1));
        let rb = n.commit(n.plan(b, &lib), b, &lib, SimTime::from_secs(1));
        n.finish(rb, SimTime::from_secs(2));
        match n.plan(a, &lib) {
            HostPlan::Configure {
                fetch_bitstream, ..
            } => assert!(fetch_bitstream, "no cache → must fetch again"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cache_evicts_lru_bitstream() {
        let mut lib = ConfigLibrary::new();
        let ids: Vec<ConfigId> = (0..3)
            .map(|i| lib.add(ProcessorConfig::new(format!("k{i}"), 2, 2.0)))
            .collect();
        let mut n = RcNode::new(NodeId(0), SimTime::ZERO, 2, 2);
        for (t, &c) in ids.iter().enumerate() {
            let r = n.commit(n.plan(c, &lib), c, &lib, SimTime::from_secs(t as u64));
            n.finish(
                r,
                SimTime::from_secs(t as u64) + SimDuration::from_millis(1),
            );
        }
        // Capacity 2: k0 should have been evicted by k2.
        assert!(!n.has_bitstream(ids[0]));
        assert!(n.has_bitstream(ids[1]));
        assert!(n.has_bitstream(ids[2]));
    }

    #[test]
    fn infeasible_when_config_bigger_than_fabric() {
        let mut lib = ConfigLibrary::new();
        let big = lib.add(ProcessorConfig::new("big", 16, 2.0));
        let n = RcNode::new(NodeId(0), SimTime::ZERO, 8, 4);
        assert_eq!(n.plan(big, &lib), HostPlan::Infeasible);
    }

    #[test]
    fn infeasible_when_all_busy() {
        let (lib, a, b) = lib2();
        let mut n = RcNode::new(NodeId(0), SimTime::ZERO, 8, 4);
        let _r1 = n.commit(n.plan(a, &lib), a, &lib, SimTime::ZERO);
        let _r2 = n.commit(n.plan(a, &lib), a, &lib, SimTime::ZERO);
        // 8 area fully busy with two a's; b (area 6) cannot fit.
        assert_eq!(n.plan(b, &lib), HostPlan::Infeasible);
        assert_eq!(n.busy_area_now(), 8);
    }

    #[test]
    fn eviction_is_lru_ordered() {
        let mut lib = ConfigLibrary::new();
        let k0 = lib.add(ProcessorConfig::new("k0", 3, 2.0));
        let k1 = lib.add(ProcessorConfig::new("k1", 3, 2.0));
        let big = lib.add(ProcessorConfig::new("big", 5, 2.0));
        let mut n = RcNode::new(NodeId(0), SimTime::ZERO, 8, 8);
        let r0 = n.commit(n.plan(k0, &lib), k0, &lib, SimTime::ZERO);
        let r1 = n.commit(n.plan(k1, &lib), k1, &lib, SimTime::ZERO);
        n.finish(r0, SimTime::from_secs(10)); // k0 idle since t=10
        n.finish(r1, SimTime::from_secs(20)); // k1 idle since t=20
                                              // big needs 5, free = 2 → must evict k0 (older) only (2+3=5).
        let plan = n.plan(big, &lib);
        match &plan {
            HostPlan::Configure { evict, .. } => {
                assert_eq!(evict.len(), 1);
                // Evicted region must be k0's: after commit, k1 remains.
            }
            other => panic!("{other:?}"),
        }
        n.commit(plan, big, &lib, SimTime::from_secs(30));
        assert!(n.has_idle_config(k1), "k1 (more recent) survives");
        assert!(!n.has_idle_config(k0), "k0 (LRU) evicted");
    }

    #[test]
    fn wasted_area_integral_counts_idle_configured_time() {
        let (lib, a, _) = lib2();
        let mut n = RcNode::new(NodeId(0), SimTime::ZERO, 8, 4);
        let r = n.commit(n.plan(a, &lib), a, &lib, SimTime::ZERO);
        n.finish(r, SimTime::from_secs(10));
        // busy 4 area for 10 s → busy integral 40; idle configured 4 area
        // for the next 10 s → wasted integral 40.
        let now = SimTime::from_secs(20);
        assert!((n.busy_area_integral(now) - 40.0).abs() < 1e-9);
        assert!((n.wasted_area_integral(now) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn partition_aggregates() {
        let (lib, a, _) = lib2();
        let mut p = RcPartition::new(SimTime::ZERO, 3, 8, 4);
        assert_eq!(p.len(), 3);
        assert_eq!(p.total_area(), 24);
        let plan = p.node(NodeId(1)).plan(a, &lib);
        let r = p.node_mut(NodeId(1)).commit(plan, a, &lib, SimTime::ZERO);
        p.node_mut(NodeId(1)).finish(r, SimTime::from_secs(5));
        let stats = p.total_stats();
        assert_eq!(stats.reconfigs, 1);
        assert_eq!(stats.completed, 1);
        assert!(p.wasted_area_integral(SimTime::from_secs(10)) > 0.0);
        assert!((p.busy_area_integral(SimTime::from_secs(10)) - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn committing_infeasible_panics() {
        let (lib, a, _) = lib2();
        let mut n = RcNode::new(NodeId(0), SimTime::ZERO, 8, 4);
        n.commit(HostPlan::Infeasible, a, &lib, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "finish on idle region")]
    fn double_finish_panics() {
        let (lib, a, _) = lib2();
        let mut n = RcNode::new(NodeId(0), SimTime::ZERO, 8, 4);
        let r = n.commit(n.plan(a, &lib), a, &lib, SimTime::ZERO);
        n.finish(r, SimTime::from_secs(1));
        n.finish(r, SimTime::from_secs(2));
    }

    #[test]
    fn region_slots_are_recycled() {
        let (lib, a, b) = lib2();
        let mut n = RcNode::new(NodeId(0), SimTime::ZERO, 8, 4);
        let r = n.commit(n.plan(a, &lib), a, &lib, SimTime::ZERO);
        n.finish(r, SimTime::from_secs(1));
        // Evicting a and configuring b should reuse slot 0.
        let rb = n.commit(n.plan(b, &lib), b, &lib, SimTime::from_secs(1));
        assert_eq!(rb, RegionId(0));
    }
}
