//! A compute site: batch cluster + optional RC partition + storage.

use crate::cluster::Cluster;
use crate::config::SiteConfig;
use crate::ids::SiteId;
use crate::reconf::RcPartition;
use crate::storage::Storage;
use tg_des::SimTime;

/// One resource-provider site in the federation.
#[derive(Debug, Clone)]
pub struct Site {
    id: SiteId,
    config: SiteConfig,
    /// The space-shared batch partition.
    pub cluster: Cluster,
    /// The reconfigurable partition (empty if the site has none).
    pub rc: RcPartition,
    /// Scratch + archive storage.
    pub storage: Storage,
    /// False while the whole site is down (fault-injected outage): the batch
    /// queue is frozen and the metascheduler routes around it.
    available: bool,
}

impl Site {
    /// Instantiate a site from its static description at time `start`.
    pub fn from_config(id: SiteId, config: SiteConfig, start: SimTime) -> Self {
        let cluster = Cluster::new(start, config.total_cores());
        let rc = RcPartition::new(
            start,
            config.rc_nodes,
            config.rc_area_per_node.max(1),
            config.rc_bitstream_cache,
        );
        let storage = Storage::new(config.storage_bandwidth_mbps, config.archive_bandwidth_mbps);
        Site {
            id,
            config,
            cluster,
            rc,
            storage,
            available: true,
        }
    }

    /// Is the site up (accepting dispatches)?
    pub fn is_available(&self) -> bool {
        self.available
    }

    /// Mark the site up or down (fault-injected outage / recovery).
    pub fn set_available(&mut self, available: bool) {
        self.available = available;
    }

    /// This site's id.
    pub fn id(&self) -> SiteId {
        self.id
    }

    /// The static description this site was built from.
    pub fn config(&self) -> &SiteConfig {
        &self.config
    }

    /// Site name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// SUs charged per core-hour at this site.
    pub fn charge_factor(&self) -> f64 {
        self.config.charge_factor
    }

    /// Relative per-core speed; a job's runtime on this site is its
    /// reference runtime divided by this.
    pub fn core_speed(&self) -> f64 {
        self.config.core_speed
    }

    /// Does this site have a reconfigurable partition?
    pub fn has_rc(&self) -> bool {
        !self.rc.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SiteConfig;

    #[test]
    fn site_from_config() {
        let cfg = SiteConfig::rc_site("gamma", 4, 8);
        let s = Site::from_config(SiteId(2), cfg.clone(), SimTime::ZERO);
        assert_eq!(s.id(), SiteId(2));
        assert_eq!(s.name(), "gamma");
        assert_eq!(s.cluster.total_cores(), cfg.total_cores());
        assert!(s.has_rc());
        assert_eq!(s.rc.len(), 4);
        assert_eq!(s.charge_factor(), 1.0);
    }

    #[test]
    fn site_without_rc() {
        let s = Site::from_config(SiteId(0), SiteConfig::medium("m"), SimTime::ZERO);
        assert!(!s.has_rc());
        assert_eq!(s.rc.len(), 0);
    }

    #[test]
    fn availability_toggles() {
        let mut s = Site::from_config(SiteId(0), SiteConfig::medium("m"), SimTime::ZERO);
        assert!(s.is_available());
        s.set_available(false);
        assert!(!s.is_available());
        s.set_available(true);
        assert!(s.is_available());
    }
}
