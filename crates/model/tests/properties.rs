//! Property-based tests for the resource model, centered on the
//! reconfigurable-node state machine: under arbitrary operation sequences
//! the fabric-area invariants must hold and the plan/commit protocol must
//! never corrupt state.

use proptest::prelude::*;
use tg_des::{SimDuration, SimTime};
use tg_model::config::{ConfigLibrary, ProcessorConfig};
use tg_model::network::{Network, Uplink};
use tg_model::reconf::{HostPlan, RcNode};
use tg_model::{Cluster, ConfigId, NodeId, SiteId};

fn small_library() -> ConfigLibrary {
    let mut lib = ConfigLibrary::new();
    for (i, area) in [2u32, 3, 4, 5].iter().enumerate() {
        lib.add(ProcessorConfig::new(format!("k{i}"), *area, 4.0 + i as f64));
    }
    lib
}

/// An operation against one RC node.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Try to host configuration `c` (by library index).
    Host(usize),
    /// Finish the oldest still-busy hosted region.
    FinishOldest,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![(0usize..4).prop_map(Op::Host), Just(Op::FinishOldest),],
        1..120,
    )
}

proptest! {
    /// Area conservation under arbitrary host/finish interleavings:
    /// busy ≤ configured ≤ total, and commit never succeeds when the plan
    /// said infeasible.
    #[test]
    fn rc_node_area_invariants(ops in arb_ops(), area_total in 4u32..16) {
        let lib = small_library();
        let mut node = RcNode::new(NodeId(0), SimTime::ZERO, area_total, 4);
        let mut busy: Vec<tg_model::reconf::RegionId> = Vec::new();
        let mut t = SimTime::ZERO;
        for op in ops {
            t += SimDuration::from_secs(10);
            match op {
                Op::Host(i) => {
                    let config = ConfigId(i);
                    match node.plan(config, &lib) {
                        HostPlan::Infeasible => {
                            // Infeasible must mean: config bigger than the
                            // fabric, or not enough free+idle area.
                            let need = lib.get(config).area;
                            prop_assert!(
                                need > node.area_total()
                                    || need > node.area_total() - node.busy_area_now()
                            );
                        }
                        plan => {
                            let rid = node.commit(plan, config, &lib, t);
                            busy.push(rid);
                        }
                    }
                }
                Op::FinishOldest => {
                    if !busy.is_empty() {
                        let rid = busy.remove(0);
                        node.finish(rid, t);
                    }
                }
            }
            prop_assert!(node.busy_area_now() <= node.configured_area_now());
            prop_assert!(node.configured_area_now() <= node.area_total());
            prop_assert_eq!(
                node.free_area(),
                node.area_total() - node.configured_area_now()
            );
            prop_assert_eq!(
                node.idle_area_now(),
                node.configured_area_now() - node.busy_area_now()
            );
        }
        // Integrals are consistent: wasted + busy ≤ total capacity.
        let horizon = t + SimDuration::from_secs(1);
        let cap = node.area_total() as f64 * horizon.as_secs_f64();
        let used = node.busy_area_integral(horizon) + node.wasted_area_integral(horizon);
        prop_assert!(used <= cap + 1e-6, "used {used} vs cap {cap}");
        prop_assert!(node.busy_area_integral(horizon) >= 0.0);
        prop_assert!(node.wasted_area_integral(horizon) >= -1e-9);
    }

    /// Counter consistency: completions ≤ placements; hits+fetches =
    /// reconfigs; reuses + reconfigs = total placements.
    #[test]
    fn rc_node_counter_identities(ops in arb_ops()) {
        let lib = small_library();
        let mut node = RcNode::new(NodeId(0), SimTime::ZERO, 10, 4);
        let mut busy: Vec<tg_model::reconf::RegionId> = Vec::new();
        let mut placements = 0u64;
        let mut t = SimTime::ZERO;
        for op in ops {
            t += SimDuration::from_secs(5);
            match op {
                Op::Host(i) => {
                    let config = ConfigId(i);
                    match node.plan(config, &lib) {
                        HostPlan::Infeasible => {}
                        plan => {
                            busy.push(node.commit(plan, config, &lib, t));
                            placements += 1;
                        }
                    }
                }
                Op::FinishOldest => {
                    if !busy.is_empty() {
                        node.finish(busy.remove(0), t);
                    }
                }
            }
        }
        let s = node.stats();
        prop_assert_eq!(s.reuses + s.reconfigs, placements);
        prop_assert_eq!(s.bitstream_fetches + s.bitstream_hits, s.reconfigs);
        prop_assert!(s.completed <= placements);
        prop_assert_eq!(s.completed + busy.len() as u64, placements);
    }

    /// Cluster acquire/release never goes negative or over capacity, and
    /// acquire is all-or-nothing.
    #[test]
    fn cluster_core_conservation(
        requests in prop::collection::vec((1usize..64, 1u64..100), 1..80),
        total in 64usize..256,
    ) {
        let mut c = Cluster::new(SimTime::ZERO, total);
        let mut held: Vec<(usize, u64)> = Vec::new();
        let mut t = 0u64;
        for (cores, dur) in requests {
            t += 1;
            // Release anything whose time has passed.
            held.retain(|&(held_cores, until)| {
                if until <= t {
                    c.release(SimTime::from_secs(t), held_cores);
                    false
                } else {
                    true
                }
            });
            let free_before = c.free_cores();
            let ok = c.acquire(SimTime::from_secs(t), cores);
            if ok {
                prop_assert!(cores <= free_before);
                held.push((cores, t + dur));
            } else {
                prop_assert!(cores > free_before, "refused although it fit");
                prop_assert_eq!(c.free_cores(), free_before, "failed acquire mutated state");
            }
            prop_assert!(c.free_cores() <= total);
            prop_assert_eq!(c.free_cores() + c.busy_cores(), total);
        }
    }

    /// Network transfer times are symmetric, monotone in size, and the
    /// latency floor is exact.
    #[test]
    fn network_transfer_properties(
        bw_a in 10.0f64..10_000.0,
        bw_b in 10.0f64..10_000.0,
        lat_a in 0.0f64..200.0,
        lat_b in 0.0f64..200.0,
        mb in 0.0f64..1e6,
    ) {
        let mut n = Network::new();
        let a = n.add_uplink(Uplink::new(bw_a, lat_a));
        let b = n.add_uplink(Uplink::new(bw_b, lat_b));
        let t_ab = n.transfer_time(a, b, mb);
        let t_ba = n.transfer_time(b, a, mb);
        prop_assert_eq!(t_ab, t_ba);
        let bigger = n.transfer_time(a, b, mb + 1.0);
        prop_assert!(bigger >= t_ab);
        let floor = n.transfer_time(a, b, 0.0);
        let expect_floor = SimDuration::from_secs_f64((lat_a + lat_b) / 1000.0);
        // Each latency independently rounds to whole microseconds, so the
        // sum can differ from the f64 sum by up to 1 µs total.
        let delta = floor.as_secs_f64() - expect_floor.as_secs_f64();
        prop_assert!(delta.abs() <= 2e-6, "floor {floor} vs {expect_floor}");
        prop_assert_eq!(n.transfer_time(a, a, mb), SimDuration::ZERO);
        let _ = SiteId(0);
    }
}
