//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors the
//! *subset* of the `rand 0.8` API it actually uses: the [`RngCore`] /
//! [`SeedableRng`] traits and [`rngs::SmallRng`]. `SmallRng` is implemented
//! as xoshiro256++ (the same family the real crate uses on 64-bit targets);
//! the exact output stream is not contractual — the simulator only relies on
//! determinism for a fixed seed, which this provides.

#![deny(unsafe_code)]

use std::fmt;

/// Error type for fallible RNG operations.
///
/// The vendored generators are infallible; this exists so signatures match
/// the upstream trait.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Construct an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fill `dest` with random data, reporting failure.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed material.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Create a generator from the given seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Create a generator from a single `u64` (expanded via SplitMix64).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Named generator types.
pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline(always)]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    impl SmallRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro's state must not be all zero; mix a fixed constant in
            // (this is what the upstream crate family does for a zero seed).
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::from_seed([7; 32]);
        let mut b = SmallRng::from_seed([7; 32]);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::from_seed([1; 32]);
        let mut b = SmallRng::from_seed([2; 32]);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SmallRng::from_seed([0; 32]);
        let xs: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(xs.iter().any(|&x| x != 0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
