//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the multi-producer multi-consumer unbounded channel used by the
//! replication runner (`crossbeam::channel::unbounded`), implemented on
//! `std::sync` primitives. Semantics match the upstream subset the workspace
//! relies on: cloneable senders and receivers, FIFO delivery, and `recv`
//! returning `Err` once the channel is empty and all senders are dropped.

#![deny(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<Inner<T>>,
        ready: Condvar,
    }

    struct Inner<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] on a drained, disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Inner {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a value, waking one blocked receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.queue.lock().expect("channel poisoned");
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.items.push_back(value);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.queue.lock().expect("channel poisoned");
            inner.senders -= 1;
            let last = inner.senders == 0;
            drop(inner);
            if last {
                // Wake every blocked receiver so they observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value is available or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(v) = inner.items.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.ready.wait(inner).expect("channel poisoned");
            }
        }

        /// Non-blocking receive; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .expect("channel poisoned")
                .items
                .pop_front()
        }

        /// Blocking iterator over received values; ends at disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .queue
                .lock()
                .expect("channel poisoned")
                .receivers -= 1;
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fifo_within_a_single_thread() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        drop(tx2);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn multi_consumer_drains_everything() {
        let (tx, rx) = channel::unbounded();
        for i in 0..100u64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_with_no_receivers() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
