//! Offline stand-in for `serde_json`.
//!
//! Provides the subset of the real crate's API this workspace uses —
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`Value`], and the
//! [`json!`] macro — implemented over the vendored `serde` stub's [`Content`]
//! tree (re-exported here as [`Value`]). Floats print via Rust's shortest
//! round-trip formatting, so the `float_roundtrip` feature is inherent.

#![deny(unsafe_code)]

pub use serde::Content as Value;
pub use serde::Error;

use serde::content::{write_escaped, write_f64};
use serde::{Deserialize, Serialize};

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::content::to_json_compact(&value.to_content()))
}

/// Serialize a value to a human-readable, 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_content(), 0);
    Ok(out)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_content()
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_content(&value)
}

fn write_pretty(out: &mut String, value: &Value, indent: usize) {
    use std::fmt::Write;
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent + 1));
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent + 1));
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, v, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs are not needed for this
                            // workspace's data; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar value.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(Value::I64)
                .ok_or_else(|| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

/// Build a [`Value`] from JSON-like syntax with interpolated expressions.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => { $crate::json_internal!($($json)+) };
}

/// Implementation detail of [`json!`] (a token muncher; not a public API).
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    //////////////////// array munching ////////////////////
    (@array [$($elems:expr,)*]) => { ::std::vec![$($elems,)*] };
    (@array [$($elems:expr),*]) => { ::std::vec![$($elems),*] };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //////////////////// object munching ////////////////////
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.push((($($key)+).into(), $value));
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.push((($($key)+).into(), $value));
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) $copy);
    };

    //////////////////// primary ////////////////////
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Seq(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Seq($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Map(::std::vec::Vec::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Map({
            let mut object: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
                ::std::vec::Vec::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_nested_values() {
        let text = r#"{"a": [1, -2, 3.5, "x\ny"], "b": {"c": true, "d": null}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"].as_array().unwrap().len(), 4);
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1], -2);
        assert_eq!(v["a"][2], 3.5);
        assert_eq!(v["a"][3], "x\ny");
        assert_eq!(v["b"]["c"], true);
        assert!(v["b"]["d"].is_null());
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
        let back: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(from_str::<Value>("{} x").is_err());
        assert!(from_str::<Value>("[package]").is_err());
    }

    #[test]
    fn scientific_notation_parses() {
        let v: Value = from_str("[1e6, 2.5e-3, -4E2]").unwrap();
        assert_eq!(v[0], 1e6);
        assert_eq!(v[1], 2.5e-3);
        assert_eq!(v[2], -4e2);
    }

    #[test]
    fn json_macro_supports_nesting_and_exprs() {
        let xs = vec![1u64, 2, 3];
        let name = String::from("alpha");
        let v = json!({
            "name": name,
            "xs": xs,
            "nested": { "k": [1, {"deep": false}], "empty": {} },
            "expr": xs.iter().map(|x| x * 2).collect::<Vec<_>>(),
        });
        assert_eq!(v["name"], "alpha");
        assert_eq!(v["xs"].as_array().unwrap().len(), 3);
        assert_eq!(v["nested"]["k"][1]["deep"], false);
        assert_eq!(v["expr"][2], 6);
    }

    #[test]
    fn floats_print_with_roundtrip_precision() {
        let s = to_string(&0.1f64).unwrap();
        assert_eq!(s, "0.1");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 0.1);
    }
}
