//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`/`boxed`, range / tuple /
//! [`collection::vec`] / [`strategy::Just`] / [`arbitrary::any`] strategies,
//! `prop_oneof!`, and the `proptest!` / `prop_assert*` macros. Cases are
//! generated from a deterministic per-test seed; there is **no shrinking** —
//! a failing case panics with the ordinary assertion message.

#![deny(unsafe_code)]

/// Test-run configuration and the deterministic case generator.
pub mod test_runner {
    /// Configuration accepted by `proptest! { #![proptest_config(...)] ... }`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; rejections are not implemented.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
                max_global_rejects: 0,
            }
        }
    }

    /// A failed (or rejected) test case, produced by the `prop_assert*`
    /// macros and propagated with `?` through helper functions.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property does not hold.
        Fail(String),
        /// The input was rejected (accepted for compatibility).
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given explanation.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection with the given explanation.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }

    /// Deterministic generator (SplitMix64) seeded from the test name, so
    /// every run of a given test explores the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test's name (FNV-1a), honoring `PROPTEST_SEED` when
        /// set so a failing exploration can be varied from the environment.
        pub fn from_name(name: &str) -> Self {
            let base = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0xcbf2_9ce4_8422_2325u64);
            let mut h = base;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The combinator behind [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies (the `prop_oneof!` backend).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty set of options.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.next_f64() as $ty;
                    self.start + u * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+),)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary_value(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }
}

/// Pattern-derived string strategies (the `"regex" as Strategy` form).
pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A generator for strings loosely matching a regex-like pattern.
    ///
    /// Supports the constructs the workspace's tests use: literal
    /// characters, the `\PC` (printable) / `\d` / `\w` / `\s` classes,
    /// `[a-z0-9]`-style sets, and the `{m,n}` / `{n}` / `*` / `+` / `?`
    /// repetition operators applied to the preceding atom.
    #[derive(Debug, Clone)]
    pub struct PatternStrategy {
        atoms: Vec<(Atom, Rep)>,
    }

    #[derive(Debug, Clone)]
    enum Atom {
        Literal(char),
        Printable,
        Digit,
        Word,
        Space,
        Set(Vec<(char, char)>),
    }

    #[derive(Debug, Clone, Copy)]
    struct Rep {
        lo: u32,
        hi: u32, // inclusive
    }

    const PRINTABLE_EXTRA: &[char] = &['é', 'µ', '→', '中', '🚀'];

    impl PatternStrategy {
        /// Parse a pattern; panics on constructs outside the subset.
        pub fn new(pattern: &str) -> Self {
            let mut chars = pattern.chars().peekable();
            let mut atoms = Vec::new();
            while let Some(c) = chars.next() {
                let atom = match c {
                    '\\' => match chars.next() {
                        Some('P') => {
                            assert_eq!(
                                chars.next(),
                                Some('C'),
                                "proptest stub: only \\PC is supported after \\P"
                            );
                            Atom::Printable
                        }
                        Some('d') => Atom::Digit,
                        Some('w') => Atom::Word,
                        Some('s') => Atom::Space,
                        Some(esc) => Atom::Literal(esc),
                        None => panic!("proptest stub: dangling backslash in pattern"),
                    },
                    '[' => {
                        let mut ranges = Vec::new();
                        loop {
                            match chars.next() {
                                Some(']') => break,
                                Some(lo) => {
                                    if chars.peek() == Some(&'-') {
                                        chars.next();
                                        let hi = chars
                                            .next()
                                            .expect("proptest stub: unterminated char range");
                                        ranges.push((lo, hi));
                                    } else {
                                        ranges.push((lo, lo));
                                    }
                                }
                                None => panic!("proptest stub: unterminated char set"),
                            }
                        }
                        Atom::Set(ranges)
                    }
                    '.' => Atom::Printable,
                    c => Atom::Literal(c),
                };
                let rep = match chars.peek() {
                    Some('{') => {
                        chars.next();
                        let mut spec = String::new();
                        for c in chars.by_ref() {
                            if c == '}' {
                                break;
                            }
                            spec.push(c);
                        }
                        let (lo, hi) = match spec.split_once(',') {
                            Some((lo, hi)) => (
                                lo.trim().parse().expect("repetition lower bound"),
                                hi.trim().parse().expect("repetition upper bound"),
                            ),
                            None => {
                                let n = spec.trim().parse().expect("repetition count");
                                (n, n)
                            }
                        };
                        Rep { lo, hi }
                    }
                    Some('*') => {
                        chars.next();
                        Rep { lo: 0, hi: 8 }
                    }
                    Some('+') => {
                        chars.next();
                        Rep { lo: 1, hi: 8 }
                    }
                    Some('?') => {
                        chars.next();
                        Rep { lo: 0, hi: 1 }
                    }
                    _ => Rep { lo: 1, hi: 1 },
                };
                atoms.push((atom, rep));
            }
            PatternStrategy { atoms }
        }

        fn gen_char(atom: &Atom, rng: &mut TestRng) -> char {
            match atom {
                Atom::Literal(c) => *c,
                Atom::Digit => char::from(b'0' + rng.below(10) as u8),
                Atom::Space => [' ', '\t'][rng.below(2) as usize],
                Atom::Word => {
                    let pool = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
                    char::from(pool[rng.below(pool.len() as u64) as usize])
                }
                Atom::Printable => {
                    // Mostly ASCII printable, occasionally multi-byte.
                    if rng.below(16) == 0 {
                        PRINTABLE_EXTRA[rng.below(PRINTABLE_EXTRA.len() as u64) as usize]
                    } else {
                        char::from(0x20 + rng.below(0x5f) as u8)
                    }
                }
                Atom::Set(ranges) => {
                    let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                    char::from_u32(lo as u32 + rng.below((hi as u32 - lo as u32 + 1) as u64) as u32)
                        .unwrap_or(lo)
                }
            }
        }
    }

    impl Strategy for PatternStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for (atom, rep) in &self.atoms {
                let count = rep.lo + rng.below((rep.hi - rep.lo + 1) as u64) as u32;
                for _ in 0..count {
                    out.push(Self::gen_char(atom, rng));
                }
            }
            out
        }
    }

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            PatternStrategy::new(self).generate(rng)
        }
    }
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a `proptest!` body (or any function returning
/// `Result<_, TestCaseError>`): on failure, returns a
/// [`test_runner::TestCaseError`] instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!(
            $cond,
            ::std::concat!("assertion failed: ", ::std::stringify!($cond))
        )
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)*);
    }};
}

/// Uniform choice among heterogeneous strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests. Each parameter is drawn from its strategy for
/// `config.cases` deterministic cases; a failing case panics immediately.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = ($config:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(::std::stringify!($name));
                for __case in 0..__config.cases {
                    let ($($pat,)+) = (
                        $($crate::strategy::Strategy::generate(&($strategy), &mut __rng),)+
                    );
                    let __result = (|| -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__err) = __result {
                        ::std::panic!(
                            "proptest: case {} of {} failed: {}",
                            __case + 1,
                            __config.cases,
                            __err
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let x = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let y = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&y));
            let z = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn vec_respects_size_spec() {
        let mut rng = crate::test_runner::TestRng::from_name("vecsize");
        for _ in 0..200 {
            let exact = prop::collection::vec(0u64..10, 4).generate(&mut rng);
            assert_eq!(exact.len(), 4);
            let ranged = prop::collection::vec(0u64..10, 1..6).generate(&mut rng);
            assert!((1..6).contains(&ranged.len()));
        }
    }

    #[test]
    fn oneof_covers_every_arm() {
        let mut rng = crate::test_runner::TestRng::from_name("oneof");
        let s = prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|x| x)];
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[5] && seen[6]);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// The macro itself: patterns, tuples, and trailing commas.
        #[test]
        fn macro_binds_patterns((a, b) in (0u64..10, 0u64..10), c in any::<bool>(),) {
            prop_assert!(a < 10 && b < 10);
            let _ = c;
        }
    }
}
