//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! tree-based serialization framework exposing the *subset* of serde's API
//! the workspace uses: the [`Serialize`] / [`Deserialize`] traits (driven by
//! the companion `serde_derive` stub) and impls for the primitive, tuple,
//! array, and container types that appear in derived structs.
//!
//! Instead of serde's streaming `Serializer`/`Deserializer` visitors, both
//! traits go through an owned JSON-like tree, [`Content`]. `serde_json`
//! re-exports [`Content`] as its `Value` and supplies the text format on
//! top. This is dramatically simpler than real serde and is only suitable
//! because the workspace never implements the traits manually.

#![deny(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like owned value tree: the interchange format between
/// [`Serialize`], [`Deserialize`], and data formats such as `serde_json`.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Content {
    /// JSON `null`.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered map with string keys (insertion order preserved).
    Map(Vec<(String, Content)>),
}

static NULL: Content = Content::Null;

impl Content {
    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(n) => Some(n),
            Content::I64(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::I64(n) => Some(n),
            Content::U64(n) if n <= i64::MAX as u64 => Some(n as i64),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::F64(x) => Some(x),
            Content::U64(n) => Some(n as f64),
            Content::I64(n) => Some(n as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a sequence, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(v) => Some(v),
            _ => None,
        }
    }

    /// The value as key/value entries, if it is a map.
    pub fn as_object(&self) -> Option<&Vec<(String, Content)>> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    /// Map lookup by key; `None` on missing key or non-map.
    pub fn get(&self, key: &str) -> Option<&Content> {
        self.as_object()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Sequence lookup by index; `None` when out of range or non-sequence.
    pub fn get_index(&self, index: usize) -> Option<&Content> {
        self.as_array().and_then(|v| v.get(index))
    }
}

impl std::ops::Index<&str> for Content {
    type Output = Content;
    fn index(&self, key: &str) -> &Content {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Content {
    type Output = Content;
    fn index(&self, index: usize) -> &Content {
        self.get_index(index).unwrap_or(&NULL)
    }
}

impl fmt::Display for Content {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::content::to_json_compact(self))
    }
}

impl PartialEq<str> for Content {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Content {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Content {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

macro_rules! content_eq_int {
    ($($ty:ty),*) => {$(
        impl PartialEq<$ty> for Content {
            fn eq(&self, other: &$ty) -> bool {
                match *self {
                    Content::U64(n) => <$ty>::try_from(n).map_or(false, |n| n == *other),
                    Content::I64(n) => <$ty>::try_from(n).map_or(false, |n| n == *other),
                    _ => false,
                }
            }
        }
    )*};
}

content_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<f64> for Content {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Content {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Error produced by serialization or deserialization.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Construct an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// Error for a map field that is required but absent.
    pub fn missing_field(field: &str) -> Self {
        Error::custom(format!("missing field `{field}`"))
    }

    /// Error for a value of the wrong shape.
    pub fn invalid_type(expected: &str, got: &Content) -> Self {
        let kind = match got {
            Content::Null => "null",
            Content::Bool(_) => "boolean",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        };
        Error::custom(format!("invalid type: expected {expected}, found {kind}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A value that can be converted into a [`Content`] tree.
pub trait Serialize {
    /// Convert `self` into the interchange tree.
    fn to_content(&self) -> Content;
}

/// A value that can be reconstructed from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct a value from the interchange tree.
    fn from_content(content: &Content) -> Result<Self, Error>;

    /// The value to use when a map field is absent entirely
    /// (`None` means "absence is an error"; `Option<T>` overrides this).
    fn if_missing() -> Option<Self> {
        None
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Box::new)
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_bool()
            .ok_or_else(|| Error::invalid_type("boolean", content))
    }
}

macro_rules! serde_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let n = content
                    .as_u64()
                    .ok_or_else(|| Error::invalid_type("unsigned integer", content))?;
                <$ty>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! serde_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                let n = *self as i64;
                if n >= 0 {
                    Content::U64(n as u64)
                } else {
                    Content::I64(n)
                }
            }
        }
        impl Deserialize for $ty {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let n = content
                    .as_i64()
                    .ok_or_else(|| Error::invalid_type("integer", content))?;
                <$ty>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

serde_uint!(u8, u16, u32, u64, usize);
serde_int!(i8, i16, i32, i64, isize);

macro_rules! serde_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn from_content(content: &Content) -> Result<Self, Error> {
                content
                    .as_f64()
                    .map(|x| x as $ty)
                    .ok_or_else(|| Error::invalid_type("number", content))
            }
        }
    )*};
}

serde_float!(f32, f64);

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::invalid_type("string", content))
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let s = content
            .as_str()
            .ok_or_else(|| Error::invalid_type("string", content))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a single character")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }

    fn if_missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_array()
            .ok_or_else(|| Error::invalid_type("array", content))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_content(content)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Vec::from_content(content).map(Into::into)
    }
}

/// Map keys must render as JSON strings.
pub trait MapKey: Sized {
    /// Render the key.
    fn to_key(&self) -> String;
    /// Parse the key back.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! int_map_key {
    ($($ty:ty),*) => {$(
        impl MapKey for $ty {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| Error::custom("invalid integer map key"))
            }
        }
    )*};
}

int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! serde_map {
    ($name:ident, $($bound:tt)*) => {
        impl<K: MapKey + $($bound)*, V: Serialize> Serialize for $name<K, V> {
            fn to_content(&self) -> Content {
                Content::Map(
                    self.iter()
                        .map(|(k, v)| (k.to_key(), v.to_content()))
                        .collect(),
                )
            }
        }
        impl<K: MapKey + $($bound)*, V: Deserialize> Deserialize for $name<K, V> {
            fn from_content(content: &Content) -> Result<Self, Error> {
                content
                    .as_object()
                    .ok_or_else(|| Error::invalid_type("object", content))?
                    .iter()
                    .map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?)))
                    .collect()
            }
        }
    };
}

serde_map!(BTreeMap, Ord);
serde_map!(HashMap, std::hash::Hash + Eq);

macro_rules! serde_tuple {
    ($(($($name:ident . $idx:tt),+),)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let seq = content
                    .as_array()
                    .ok_or_else(|| Error::invalid_type("array", content))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of length {expected}, got {}",
                        seq.len()
                    )));
                }
                Ok(($($name::from_content(&seq[$idx])?,)+))
            }
        }
    )*};
}

serde_tuple! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
}

/// Helpers called from `serde_derive`-generated code. Not a public API.
pub mod __private {
    pub use super::{Content, Deserialize, Error, Serialize};

    /// Serialize any value (lets generated code avoid naming field types).
    pub fn ser<T: Serialize + ?Sized>(value: &T) -> Content {
        value.to_content()
    }

    /// Deserialize with the target type inferred from context.
    pub fn de<T: Deserialize>(content: &Content) -> Result<T, Error> {
        T::from_content(content)
    }

    /// Look up `name` in a map's entries.
    pub fn get<'a>(entries: &'a [(String, Content)], name: &str) -> Option<&'a Content> {
        entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Deserialize a required map field (honoring `Deserialize::if_missing`).
    pub fn de_field<T: Deserialize>(entries: &[(String, Content)], name: &str) -> Result<T, Error> {
        match get(entries, name) {
            Some(v) => T::from_content(v),
            None => T::if_missing().ok_or_else(|| Error::missing_field(name)),
        }
    }

    /// Deserialize a `#[serde(default)]` map field.
    pub fn de_field_default<T: Deserialize + Default>(
        entries: &[(String, Content)],
        name: &str,
    ) -> Result<T, Error> {
        match get(entries, name) {
            Some(v) => T::from_content(v),
            None => Ok(T::default()),
        }
    }

    /// Entries of a map value, or a type error mentioning `what`.
    pub fn as_map<'a>(content: &'a Content, what: &str) -> Result<&'a [(String, Content)], Error> {
        content
            .as_object()
            .map(Vec::as_slice)
            .ok_or_else(|| Error::custom(format!("expected object for {what}")))
    }
}

/// Compact JSON rendering used by `Display` (the full writer lives in the
/// `serde_json` stub; this keeps `Content: Display` self-contained).
pub mod content {
    use super::Content;
    use std::fmt::Write;

    /// Escape and quote a JSON string.
    pub fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Render a number the way JSON requires (non-finite floats as null).
    pub fn write_f64(out: &mut String, x: f64) {
        if x.is_finite() {
            let _ = write!(out, "{x:?}");
        } else {
            out.push_str("null");
        }
    }

    /// One-line JSON rendering.
    pub fn to_json_compact(value: &Content) -> String {
        let mut out = String::new();
        write_compact(&mut out, value);
        out
    }

    fn write_compact(out: &mut String, value: &Content) {
        match value {
            Content::Null => out.push_str("null"),
            Content::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Content::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Content::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Content::F64(x) => write_f64(out, *x),
            Content::Str(s) => write_escaped(out, s),
            Content::Seq(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_compact(out, item);
                }
                out.push(']');
            }
            Content::Map(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    write_compact(out, v);
                }
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip_and_if_missing() {
        assert_eq!(Option::<u64>::if_missing(), Some(None));
        let c = Some(3u64).to_content();
        assert_eq!(Option::<u64>::from_content(&c).unwrap(), Some(3));
        assert_eq!(Option::<u64>::from_content(&Content::Null).unwrap(), None);
    }

    #[test]
    fn arrays_check_length() {
        let c = vec![1u64, 2, 3].to_content();
        assert_eq!(<[u64; 3]>::from_content(&c).unwrap(), [1, 2, 3]);
        assert!(<[u64; 4]>::from_content(&c).is_err());
    }

    #[test]
    fn indexing_missing_keys_yields_null() {
        let c = Content::Map(vec![("a".into(), Content::U64(1))]);
        assert_eq!(c["a"], 1);
        assert!(c["b"].is_null());
        assert!(c["a"]["nested"].is_null());
    }

    #[test]
    fn negative_integers_roundtrip() {
        let c = (-5i64).to_content();
        assert_eq!(i64::from_content(&c).unwrap(), -5);
        assert!(u64::from_content(&c).is_err());
    }

    #[test]
    fn display_renders_compact_json() {
        let c = Content::Map(vec![
            ("k".into(), Content::Str("v\"x".into())),
            ("n".into(), Content::F64(1.5)),
        ]);
        assert_eq!(c.to_string(), r#"{"k":"v\"x","n":1.5}"#);
    }
}
