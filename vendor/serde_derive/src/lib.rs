//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! declaration shapes this workspace actually uses, without `syn`/`quote`
//! (unavailable offline): a hand-rolled token walk over the item, then
//! source-text code generation parsed back into a `TokenStream`.
//!
//! Supported shapes:
//! - named-field structs (with `#[serde(default)]` / `#[serde(rename)]` on
//!   fields and `#[serde(rename_all = "...")]` on the container),
//! - tuple structs (single-field newtypes serialize transparently),
//! - unit structs,
//! - enums with unit / named-field / tuple variants, externally tagged by
//!   default or internally tagged via `#[serde(tag = "...")]`.
//!
//! Generics are not supported (the workspace derives none); the macro
//! panics with a clear message if it meets them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsed representation
// ---------------------------------------------------------------------------

#[derive(Default)]
struct ContainerAttrs {
    rename_all: Option<String>,
    tag: Option<String>,
}

#[derive(Default)]
struct FieldAttrs {
    default: bool,
    rename: Option<String>,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    attrs: ContainerAttrs,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Token-walk parser
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.at_punct(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if self.at_ident(word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.bump() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive stub: expected identifier, got {other:?}"),
        }
    }

    /// Consume leading attributes, folding any `#[serde(...)]` contents
    /// through `apply`.
    fn eat_attrs(&mut self, mut apply: impl FnMut(TokenStream)) {
        while self.at_punct('#') {
            self.pos += 1;
            match self.bump() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let mut inner = Cursor::new(g.stream());
                    if inner.eat_ident("serde") {
                        if let Some(TokenTree::Group(args)) = inner.bump() {
                            apply(args.stream());
                        }
                    }
                }
                other => panic!("serde derive stub: malformed attribute: {other:?}"),
            }
        }
    }

    /// Skip `pub`, `pub(crate)`, `pub(in ...)`.
    fn eat_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skip tokens until a comma at angle-bracket depth zero (or the end).
    /// Used to discard field types and enum discriminants.
    fn skip_until_comma(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
                _ => {}
            }
            self.pos += 1;
        }
    }
}

fn parse_serde_args(stream: TokenStream, mut on_flag: impl FnMut(&str, Option<String>)) {
    let mut cur = Cursor::new(stream);
    while cur.peek().is_some() {
        let key = cur.expect_ident();
        let value = if cur.eat_punct('=') {
            match cur.bump() {
                Some(TokenTree::Literal(l)) => Some(unquote(&l.to_string())),
                other => {
                    panic!("serde derive stub: expected literal after `{key} =`, got {other:?}")
                }
            }
        } else {
            None
        };
        on_flag(&key, value);
        cur.eat_punct(',');
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    let mut attrs = ContainerAttrs::default();
    cur.eat_attrs(|args| {
        parse_serde_args(args, |key, value| match key {
            "rename_all" => attrs.rename_all = value,
            "tag" => attrs.tag = value,
            // Accepted and ignored: no effect on this stub's behavior.
            "deny_unknown_fields" | "transparent" => {}
            other => panic!("serde derive stub: unsupported container attr `{other}`"),
        });
    });
    cur.eat_visibility();

    let shape_kw = cur.expect_ident();
    let name = cur.expect_ident();
    if cur.at_punct('<') {
        panic!("serde derive stub: generic type `{name}` is not supported");
    }

    let shape = match shape_kw.as_str() {
        "struct" => Shape::Struct(parse_struct_fields(&mut cur)),
        "enum" => {
            let body = match cur.bump() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde derive stub: expected enum body, got {other:?}"),
            };
            Shape::Enum(parse_variants(body))
        }
        other => panic!("serde derive stub: expected struct or enum, got `{other}`"),
    };
    Item { name, attrs, shape }
}

fn parse_struct_fields(cur: &mut Cursor) -> Fields {
    match cur.bump() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        other => panic!("serde derive stub: expected struct body, got {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let mut attrs = FieldAttrs::default();
        cur.eat_attrs(|args| {
            parse_serde_args(args, |key, value| match key {
                "default" => attrs.default = true,
                "rename" => attrs.rename = value,
                other => panic!("serde derive stub: unsupported field attr `{other}`"),
            });
        });
        cur.eat_visibility();
        let name = cur.expect_ident();
        if !cur.eat_punct(':') {
            panic!("serde derive stub: expected `:` after field `{name}`");
        }
        cur.skip_until_comma();
        cur.eat_punct(',');
        fields.push(Field { name, attrs });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    let mut count = 0usize;
    while cur.peek().is_some() {
        // Each field: attrs, visibility, then a type we skip.
        cur.eat_attrs(|_| {});
        cur.eat_visibility();
        if cur.peek().is_none() {
            break;
        }
        cur.skip_until_comma();
        cur.eat_punct(',');
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while cur.peek().is_some() {
        cur.eat_attrs(|_| {});
        let name = cur.expect_ident();
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body = g.stream();
                cur.pos += 1;
                Fields::Named(parse_named_fields(body))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body = g.stream();
                cur.pos += 1;
                Fields::Tuple(count_tuple_fields(body))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant, if any.
        if cur.eat_punct('=') {
            cur.skip_until_comma();
        }
        cur.eat_punct(',');
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Name mangling
// ---------------------------------------------------------------------------

fn apply_rename_all(name: &str, rule: Option<&str>) -> String {
    match rule {
        None => name.to_string(),
        Some("snake_case") => {
            let mut out = String::new();
            for (i, c) in name.chars().enumerate() {
                if i > 0 && c.is_uppercase() {
                    out.push('_');
                }
                out.push(c.to_ascii_lowercase());
            }
            out
        }
        Some("lowercase") => name.to_lowercase(),
        Some("UPPERCASE") => name.to_uppercase(),
        Some("kebab-case") => apply_rename_all(name, Some("snake_case")).replace('_', "-"),
        Some("SCREAMING_SNAKE_CASE") => apply_rename_all(name, Some("snake_case")).to_uppercase(),
        Some(other) => panic!("serde derive stub: unsupported rename_all rule `{other}`"),
    }
}

fn field_key(field: &Field, container: &ContainerAttrs) -> String {
    field
        .attrs
        .rename
        .clone()
        .unwrap_or_else(|| apply_rename_all(&field.name, container.rename_all.as_deref()))
}

fn variant_key(variant: &Variant, container: &ContainerAttrs) -> String {
    apply_rename_all(&variant.name, container.rename_all.as_deref())
}

// ---------------------------------------------------------------------------
// Code generation (source text, then parsed back into a TokenStream)
// ---------------------------------------------------------------------------

fn str_lit(s: &str) -> String {
    format!("{s:?}")
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => ser_struct_body(name, fields, &item.attrs),
        Shape::Enum(variants) => ser_enum_body(name, variants, &item.attrs),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n\
         }}\n"
    )
}

fn ser_struct_body(_name: &str, fields: &Fields, attrs: &ContainerAttrs) -> String {
    match fields {
        Fields::Unit => "::serde::Content::Null".to_string(),
        Fields::Tuple(1) => "::serde::__private::ser(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::__private::ser(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
        }
        Fields::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({key}), ::serde::__private::ser(&self.{field}))",
                        key = str_lit(&field_key(f, attrs)),
                        field = f.name
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
        }
    }
}

fn ser_enum_body(name: &str, variants: &[Variant], attrs: &ContainerAttrs) -> String {
    let mut arms = Vec::new();
    for v in variants {
        let key = str_lit(&variant_key(v, attrs));
        let arm = match (&v.fields, &attrs.tag) {
            (Fields::Unit, None) => {
                format!("{name}::{v} => ::serde::Content::Str(::std::string::String::from({key}))", v = v.name)
            }
            (Fields::Unit, Some(tag)) => format!(
                "{name}::{v} => ::serde::Content::Map(::std::vec![(::std::string::String::from({tag}), \
                 ::serde::Content::Str(::std::string::String::from({key})))])",
                v = v.name,
                tag = str_lit(tag)
            ),
            (Fields::Named(fields), tag) => {
                let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let mut entries = Vec::new();
                if let Some(tag) = tag {
                    entries.push(format!(
                        "(::std::string::String::from({tag}), ::serde::Content::Str(::std::string::String::from({key})))",
                        tag = str_lit(tag)
                    ));
                }
                for f in fields {
                    entries.push(format!(
                        "(::std::string::String::from({fkey}), ::serde::__private::ser({f}))",
                        fkey = str_lit(&field_key(f, &ContainerAttrs::default())),
                        f = f.name
                    ));
                }
                let map = format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "));
                let value = if tag.is_some() {
                    map
                } else {
                    format!(
                        "::serde::Content::Map(::std::vec![(::std::string::String::from({key}), {map})])"
                    )
                };
                format!(
                    "{name}::{v} {{ {binders} }} => {value}",
                    v = v.name,
                    binders = binders.join(", ")
                )
            }
            (Fields::Tuple(n), None) => {
                let binders: Vec<String> = (0..*n).map(|i| format!("v{i}")).collect();
                let inner = if *n == 1 {
                    "::serde::__private::ser(v0)".to_string()
                } else {
                    let items: Vec<String> = binders
                        .iter()
                        .map(|b| format!("::serde::__private::ser({b})"))
                        .collect();
                    format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
                };
                format!(
                    "{name}::{v}({binders}) => ::serde::Content::Map(::std::vec![(::std::string::String::from({key}), {inner})])",
                    v = v.name,
                    binders = binders.join(", ")
                )
            }
            (Fields::Tuple(_), Some(_)) => panic!(
                "serde derive stub: internally tagged tuple variant `{}` unsupported",
                v.name
            ),
        };
        arms.push(arm);
    }
    format!("match self {{\n{}\n}}", arms.join(",\n"))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => de_struct_body(name, fields, &item.attrs),
        Shape::Enum(variants) => de_enum_body(name, variants, &item.attrs),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_content(content: &::serde::Content) \
              -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}\n"
    )
}

fn de_named_fields(path: &str, fields: &[Field], attrs: &ContainerAttrs) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let getter = if f.attrs.default {
                "de_field_default"
            } else {
                "de_field"
            };
            format!(
                "{field}: ::serde::__private::{getter}(entries, {key})?",
                field = f.name,
                key = str_lit(&field_key(f, attrs))
            )
        })
        .collect();
    format!(
        "::std::result::Result::Ok({path} {{ {} }})",
        inits.join(", ")
    )
}

fn de_struct_body(name: &str, fields: &Fields, attrs: &ContainerAttrs) -> String {
    match fields {
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::__private::de(content)?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::__private::de(&seq[{i}])?"))
                .collect();
            format!(
                "let seq = content.as_array().ok_or_else(|| \
                 ::serde::Error::invalid_type(\"array\", content))?;\n\
                 if seq.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::custom(\"wrong tuple length\")); }}\n\
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Fields::Named(fields) => format!(
            "let entries = ::serde::__private::as_map(content, {what})?;\n{ok}",
            what = str_lit(&format!("struct {name}")),
            ok = de_named_fields(name, fields, attrs)
        ),
    }
}

fn de_enum_body(name: &str, variants: &[Variant], attrs: &ContainerAttrs) -> String {
    if let Some(tag) = &attrs.tag {
        // Internally tagged: one map holding the tag plus the fields.
        let mut arms = Vec::new();
        for v in variants {
            let key = str_lit(&variant_key(v, attrs));
            let arm = match &v.fields {
                Fields::Unit => format!(
                    "{key} => ::std::result::Result::Ok({name}::{v})",
                    v = v.name
                ),
                Fields::Named(fields) => format!(
                    "{key} => {{ {} }}",
                    de_named_fields(
                        &format!("{name}::{v}", v = v.name),
                        fields,
                        &ContainerAttrs::default()
                    )
                ),
                Fields::Tuple(_) => panic!(
                    "serde derive stub: internally tagged tuple variant `{}` unsupported",
                    v.name
                ),
            };
            arms.push(arm);
        }
        format!(
            "let entries = ::serde::__private::as_map(content, {what})?;\n\
             let tag: ::std::string::String = ::serde::__private::de_field(entries, {tag})?;\n\
             match tag.as_str() {{\n{arms},\n\
             other => ::std::result::Result::Err(::serde::Error::custom(\
             ::std::format!(\"unknown variant `{{other}}`\")))\n}}",
            what = str_lit(&format!("enum {name}")),
            tag = str_lit(tag),
            arms = arms.join(",\n")
        )
    } else {
        // Externally tagged: a bare string for unit variants, a single-entry
        // map for data-carrying ones.
        let mut unit_arms = Vec::new();
        let mut map_arms = Vec::new();
        for v in variants {
            let key = str_lit(&variant_key(v, attrs));
            match &v.fields {
                Fields::Unit => unit_arms.push(format!(
                    "{key} => ::std::result::Result::Ok({name}::{v})",
                    v = v.name
                )),
                Fields::Named(fields) => map_arms.push(format!(
                    "{key} => {{\nlet entries = ::serde::__private::as_map(value, {what})?;\n{ok}\n}}",
                    what = str_lit(&format!("variant {}", v.name)),
                    ok = de_named_fields(
                        &format!("{name}::{v}", v = v.name),
                        fields,
                        &ContainerAttrs::default()
                    )
                )),
                Fields::Tuple(1) => map_arms.push(format!(
                    "{key} => ::std::result::Result::Ok({name}::{v}(::serde::__private::de(value)?))",
                    v = v.name
                )),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::__private::de(&seq[{i}])?"))
                        .collect();
                    map_arms.push(format!(
                        "{key} => {{\nlet seq = value.as_array().ok_or_else(|| \
                         ::serde::Error::invalid_type(\"array\", value))?;\n\
                         if seq.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::Error::custom(\"wrong tuple length\")); }}\n\
                         ::std::result::Result::Ok({name}::{v}({items}))\n}}",
                        v = v.name,
                        items = items.join(", ")
                    ));
                }
            }
        }
        let unit_match = if unit_arms.is_empty() {
            String::from(
                "::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unexpected string variant `{s}`\")))",
            )
        } else {
            format!(
                "match s.as_str() {{\n{arms},\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{other}}`\")))\n}}",
                arms = unit_arms.join(",\n")
            )
        };
        let map_match = if map_arms.is_empty() {
            String::from(
                "{ let _ = value; ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unexpected map variant `{key}`\"))) }",
            )
        } else {
            format!(
                "match key.as_str() {{\n{arms},\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{other}}`\")))\n}}",
                arms = map_arms.join(",\n")
            )
        };
        format!(
            "match content {{\n\
             ::serde::Content::Str(s) => {unit_match},\n\
             ::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
             let (key, value) = &entries[0];\n{map_match}\n}},\n\
             other => ::std::result::Result::Err(::serde::Error::invalid_type({what}, other))\n\
             }}",
            what = str_lit(&format!("enum {name}"))
        )
    }
}
