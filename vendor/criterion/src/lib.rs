//! Offline stand-in for the `criterion` crate.
//!
//! A timing-only harness exposing the API surface the workspace's benches
//! use. Each benchmark is run for a fixed number of timed batches and the
//! per-iteration mean / min / max are printed to stdout — no statistics
//! engine, no HTML reports. Good enough to (a) keep `cargo bench` compiling
//! and runnable offline and (b) give coarse relative numbers.

#![deny(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a computed value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Throughput annotation (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A bare parameterized id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    batches: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { batches: 30 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let batches = self.batches;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            batches,
            throughput: None,
        }
    }

    /// Run the registered group functions (used by `criterion_main!`).
    pub fn final_summary(&mut self) {}

    /// Parse CLI arguments (accepted and ignored; for API compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    batches: u32,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Reduce/extend the number of timed batches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.batches = (n as u32).max(5);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Benchmark a closure that receives an input by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finish the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            batch_times: Vec::with_capacity(self.batches as usize),
            iters_per_batch: 0,
        };
        // Calibration pass: size batches to roughly 5 ms.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            bencher.iters_per_batch = iters;
            f(&mut bencher);
            let elapsed = start.elapsed();
            bencher.batch_times.clear();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 4).min(1 << 20);
        }
        for _ in 0..self.batches {
            f(&mut bencher);
        }
        let per_iter: Vec<f64> = bencher
            .batch_times
            .iter()
            .map(|d| d.as_secs_f64() / bencher.iters_per_batch as f64)
            .collect();
        let n = per_iter.len().max(1) as f64;
        let mean = per_iter.iter().sum::<f64>() / n;
        let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().copied().fold(0.0f64, f64::max);
        let rate = match self.throughput {
            Some(Throughput::Elements(e)) if mean > 0.0 => {
                format!("  {:.3} Melem/s", e as f64 / mean / 1e6)
            }
            Some(Throughput::Bytes(b)) if mean > 0.0 => {
                format!("  {:.3} MiB/s", b as f64 / mean / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: mean {} (min {}, max {}){rate}",
            self.name,
            fmt_time(mean),
            fmt_time(min),
            fmt_time(max),
        );
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Times closures inside one benchmark.
pub struct Bencher {
    batch_times: Vec<Duration>,
    iters_per_batch: u64,
}

impl Bencher {
    /// Time `routine`, called `iters_per_batch` times per batch.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters_per_batch {
            black_box(routine());
        }
        self.batch_times.push(start.elapsed());
    }

    /// Time `routine` on a fresh `setup()` product, excluding setup time.
    pub fn iter_with_setup<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters_per_batch {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.batch_times.push(total);
    }
}

/// Register benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_something() {
        let mut c = Criterion { batches: 5 };
        let mut group = c.benchmark_group("unit");
        group.throughput(Throughput::Elements(1));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u64, |b, &n| {
            b.iter_with_setup(|| n, |x| x * 2)
        });
        group.finish();
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
