//! Replay a Standard Workload Format trace through the federation.
//!
//! The Parallel Workloads Archive pathway: export a generated workload to
//! SWF (what an external tool — or a real site's accounting dump — would
//! hand us), read it back, and drive the simulator with the imported jobs.
//! The round trip demonstrates that archive traces are first-class inputs,
//! and quantifies what the SWF format cannot carry (workflow structure,
//! gateway identity, RC requirements — see `tg_workload::swf`).
//!
//! Run with:
//! ```sh
//! cargo run --release --example replay_swf
//! ```

use teragrid_repro::prelude::*;
use tg_core::sim::{Event, GridSim};
use tg_des::Engine;
use tg_model::Federation;
use tg_sched::BatchScheduler;
use tg_workload::swf;

fn main() {
    // 1. Generate a workload and export it to SWF text.
    let gen_cfg = GeneratorConfig::baseline(120, 7, 2);
    let original = WorkloadGenerator::new(gen_cfg).generate(&RngFactory::new(99));
    let swf_text = swf::to_swf(&original.jobs);
    println!(
        "exported {} jobs to SWF ({} KiB of trace text)",
        original.jobs.len(),
        swf_text.len() / 1024
    );

    // 2. Import it back — this is exactly what loading an archive trace
    //    looks like; only SWF-representable fields survive.
    let imported = swf::from_swf(&swf_text).expect("trace parses");
    println!("imported {} jobs from the trace", imported.len());

    // 3. Replay through a two-site federation under EASY.
    let federation = Federation::builder()
        .site(SiteConfig {
            batch_nodes: 128,
            ..SiteConfig::medium("alpha")
        })
        .site(SiteConfig {
            batch_nodes: 96,
            ..SiteConfig::medium("bravo")
        })
        .library(ConfigLibrary::new())
        .build();
    let schedulers: Vec<Box<dyn BatchScheduler>> = federation
        .sites()
        .map(|s| SchedulerKind::Easy.build(s.cluster.total_cores()))
        .collect();
    // Clamp imported jobs to the machines (archive traces come from bigger
    // iron than this demo federation): a pinned job must fit its site, an
    // unpinned one the largest site.
    let site_cores = [128 * 8, 96 * 8];
    let jobs: Vec<Job> = imported
        .into_iter()
        .map(|mut j| {
            if let Some(s) = j.site_hint {
                if s.index() >= site_cores.len() {
                    j.site_hint = None; // site ids beyond this federation
                }
            }
            let cap = match j.site_hint {
                Some(s) => site_cores[s.index()],
                None => *site_cores.iter().max().expect("non-empty"),
            };
            j.cores = j.cores.min(cap);
            j
        })
        .collect();
    let sim = GridSim::new(
        federation,
        schedulers,
        MetaPolicy::ShortestEta,
        RcPolicy::AWARE,
        SiteId(0),
        jobs,
        RngFactory::new(99),
    );
    let mut engine: Engine<Event> = Engine::new();
    let out = sim.run(&mut engine);
    println!(
        "replay complete: {} jobs finished by {}, mean wait {:.0} s",
        out.db.jobs.len(),
        out.end,
        tg_accounting::query::mean_wait_secs(&out.db.jobs)
    );

    // 4. What the trace format lost: the replayed records can still be
    //    classified, but only from shape/timing — structural markers are gone.
    let inferred = classify_all(&out.db, ClassifierMode::WithAttributes);
    let acc = Accuracy::score(&out.truth, &inferred);
    println!(
        "classifier on replayed trace: accuracy {:.3}, macro-F1 {:.3} \
         (vs ~0.99 on native records — the gap is what SWF cannot carry)",
        acc.accuracy, acc.macro_f1
    );
}
