//! Quickstart: simulate a three-site federation for two weeks, then do what
//! the paper proposes — measure usage modalities from the accounting records
//! and check the measurement against ground truth.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use teragrid_repro::prelude::*;

fn main() {
    // A 300-user population over 14 days on the baseline federation
    // (two conventional sites plus one with an FPGA partition).
    let scenario = ScenarioConfig::baseline(300, 14).build();
    println!("running scenario `{}` ...", scenario.config().name);
    let out = scenario.run(42);
    println!(
        "simulated {} events; {} jobs completed by {}",
        out.events_delivered,
        out.db.jobs.len(),
        out.end
    );

    // 1. What the operators would publish: usage shares by modality,
    //    labelled with ground truth (the generator knows what each user was
    //    doing).
    let report = UsageReport::compute(&out.db, &out.truth, &out.charge_policy);
    println!("\n{report}");

    // 2. The measurement pipeline: infer each job's modality from the
    //    records alone and score the inference.
    for mode in [ClassifierMode::WithAttributes, ClassifierMode::RecordsOnly] {
        let inferred = classify_all(&out.db, mode);
        let acc = Accuracy::score(&out.truth, &inferred);
        println!(
            "classifier [{}]: accuracy {:.3}, macro-F1 {:.3}",
            mode.name(),
            acc.accuracy,
            acc.macro_f1
        );
    }

    // 3. Site-level outcomes.
    println!();
    for s in &out.site_stats {
        print!(
            "site {:<8} utilization {:>5.1}%  jobs {:>6}",
            s.name,
            100.0 * s.utilization,
            s.jobs_finished
        );
        if s.rc_stats.completed > 0 {
            print!(
                "  [fabric: {} tasks, {} reuses, {} reconfigs]",
                s.rc_stats.completed, s.rc_stats.reuses, s.rc_stats.reconfigs
            );
        }
        println!();
    }
}
