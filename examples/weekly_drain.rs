//! Weekly drain: the capability-vs-capacity study on a single large
//! machine. Compares plain EASY backfill against the weekly-drain policy
//! when full-machine "hero" runs are in the workload.
//!
//! Run with:
//! ```sh
//! cargo run --release --example weekly_drain
//! ```

use teragrid_repro::prelude::*;
use tg_model::SiteConfig;

fn scenario(kind: SchedulerKind) -> ScenarioConfig {
    let site = SiteConfig {
        batch_nodes: 256, // × 8 = 2048 cores
        ..SiteConfig::medium("kraken-jr")
    };
    let mut mix = PopulationMix::baseline(0);
    mix.users_per_modality = [0; Modality::ALL.len()];
    mix.users_per_modality[Modality::BatchComputing.index()] = 26;
    let workload = GeneratorConfig {
        horizon: SimDuration::from_days(28),
        mix,
        profiles: ModalityProfile::all_defaults(),
        sites: 1,
        rc_sites: vec![],
        rc_config_count: 0,
        data: None,
    };
    ScenarioConfig {
        name: format!("weekly-drain-{}", kind.name()),
        sites: vec![site],
        data_home: 0,
        scheduler: kind,
        meta: MetaPolicy::ShortestEta,
        rc_policy: RcPolicy::AWARE,
        workload,
        library: None,
        sample_interval: None,
        faults: None,
        data: None,
    }
}

fn main() {
    let hero_cores = (2048f64 * 0.9) as usize;
    println!("scheduler     utilization  heroes  hero-wait  normal-wait");
    for kind in [
        SchedulerKind::NaiveDrain,
        SchedulerKind::WeeklyDrain,
        SchedulerKind::Easy,
    ] {
        let out = scenario(kind).build().run(7);
        let (heroes, normal): (Vec<_>, Vec<_>) =
            out.db.jobs.iter().partition(|j| j.cores >= hero_cores);
        let mean_h = |v: &[&JobRecord]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().map(|j| j.wait().as_hours_f64()).sum::<f64>() / v.len() as f64
            }
        };
        let mean_s = |v: &[&JobRecord]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().map(|j| j.wait().as_secs_f64()).sum::<f64>() / v.len() as f64
            }
        };
        println!(
            "{:<12}  {:>10.1}%  {:>6}  {:>8.1}h  {:>10.0}s",
            kind.name(),
            100.0 * out.average_utilization(),
            heroes.len(),
            mean_h(&heroes),
            mean_s(&normal),
        );
    }
    println!(
        "\nThe weekly policy recovers the utilization a naive (stop-the-world)\n\
         drain burns while bounding hero waits by the boundary cadence.\n\
         Plain EASY here is an idealized bound: generated estimates are true\n\
         upper bounds on runtime, so backfill packs per-hero drain ramps\n\
         almost perfectly — production backfill never had that guarantee."
    );
}
