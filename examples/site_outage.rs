//! Site outage walk-through: take a single big machine down for half a day
//! mid-week and read everything the fault layer reports back — the
//! `FaultReport`, the wait-time damage, and how the requeue and checkpoint
//! outage policies differ.
//!
//! A one-site scenario is used deliberately: on a multi-site federation the
//! `shortest_eta` metascheduler is sensitive to any capacity perturbation
//! (one crashed core reshuffles hundreds of routing decisions), which
//! drowns the direct fault effects this example wants to show.
//!
//! Run with:
//! ```sh
//! cargo run --release --example site_outage
//! ```

use teragrid_repro::prelude::*;
use tg_model::SiteConfig;

/// A week on one 1024-core machine: batch plus interactive load, a 12-hour
/// outage starting day 3 (announced two hours ahead), a trickle of node
/// crashes, and mild accounting-ingest loss.
fn scenario(policy: OutagePolicy) -> ScenarioConfig {
    let site = SiteConfig {
        batch_nodes: 128, // × 8 = 1024 cores
        ..SiteConfig::medium("lonestar-jr")
    };
    let mut mix = PopulationMix::baseline(0);
    mix.users_per_modality = [0; Modality::ALL.len()];
    mix.users_per_modality[Modality::BatchComputing.index()] = 20;
    mix.users_per_modality[Modality::Interactive.index()] = 12;
    let workload = GeneratorConfig {
        horizon: SimDuration::from_days(7),
        mix,
        profiles: ModalityProfile::all_defaults(),
        sites: 1,
        rc_sites: vec![],
        rc_config_count: 0,
        data: None,
    };
    ScenarioConfig {
        name: format!("site-outage-{policy:?}"),
        sites: vec![site],
        data_home: 0,
        scheduler: SchedulerKind::Easy,
        meta: MetaPolicy::ShortestEta,
        rc_policy: RcPolicy::AWARE,
        workload,
        library: None,
        sample_interval: None,
        faults: Some(FaultSpec {
            node_crashes: Some(NodeCrashSpec {
                mtbf_hours: 60.0,
                repair_hours: 2.0,
                cores_per_crash: 32,
                horizon_days: 7.0,
            }),
            site_outages: vec![OutageWindow {
                site: 0,
                start_hours: 72.0,
                duration_hours: 12.0,
                notice_hours: 2.0,
            }],
            wan_degradations: vec![],
            ingest: Some(IngestFaults {
                loss: 0.01,
                duplication: 0.002,
            }),
            retry: Some(RetryPolicy {
                max_retries: 3,
                backoff_base_s: 60.0,
                backoff_factor: 2.0,
                backoff_cap_s: 3600.0,
            }),
            outage_policy: policy,
        }),
        data: None,
    }
}

fn mean_wait_s(out: &SimOutput) -> f64 {
    if out.db.jobs.is_empty() {
        return 0.0;
    }
    out.db
        .jobs
        .iter()
        .map(|j| j.wait().as_secs_f64())
        .sum::<f64>()
        / out.db.jobs.len() as f64
}

fn main() {
    let seed = 7;

    // A healthy run of the same machine is the yardstick.
    let mut healthy_cfg = scenario(OutagePolicy::Requeue);
    healthy_cfg.faults = None;
    let healthy = healthy_cfg.build().run(seed);

    let requeue = scenario(OutagePolicy::Requeue).build().run(seed);
    let checkpoint = scenario(OutagePolicy::Checkpoint).build().run(seed);

    println!("run          jobs-in-db   mean-wait   utilization");
    for (name, out) in [
        ("healthy", &healthy),
        ("requeue", &requeue),
        ("checkpoint", &checkpoint),
    ] {
        println!(
            "{:<12} {:>10}  {:>8.0}s   {:>10.3}",
            name,
            out.db.jobs.len(),
            mean_wait_s(out),
            out.average_utilization(),
        );
    }

    // Walk the report the requeue run produced.
    let report: &FaultReport = requeue
        .fault_report
        .as_ref()
        .expect("faulted run carries a report");
    println!("\nFaultReport (requeue policy):");
    println!("  node crashes          {}", report.node_crashes);
    println!("  site outages          {}", report.site_outages);
    for (site, down) in report.downtime_by_site.iter().enumerate() {
        if *down > 0.0 {
            println!("  site {site} downtime       {:.1} h", down / 3600.0);
        }
    }
    for (site, degraded) in report.degraded_by_site.iter().enumerate() {
        if *degraded > 0.0 {
            println!("  site {site} WAN degraded   {:.1} h", degraded / 3600.0);
        }
    }
    println!("  jobs killed           {}", report.jobs_killed);
    println!("  jobs requeued         {}", report.jobs_requeued);
    println!("  jobs abandoned        {}", report.jobs_abandoned);
    println!("  checkpoint restarts   {}", report.checkpoint_restarts);
    println!("  records lost          {}", report.records_lost);
    println!("  records duplicated    {}", report.records_duplicated);

    let ckpt = checkpoint.fault_report.as_ref().unwrap();
    println!(
        "\nUnder the checkpoint policy the same outage produced {} restarts\n\
         (work resumes with only its remaining runtime); under requeue, the\n\
         {} killed jobs reran from scratch after exponential backoff. Lost\n\
         accounting records ({} here) thin the measured database but never\n\
         touch the generator's ground truth — that asymmetry is what the R1\n\
         classifier-robustness experiment sweeps.",
        ckpt.checkpoint_restarts, report.jobs_killed, report.records_lost,
    );
}
