//! Reconfigurable cluster: drive an FPGA partition directly through the
//! public model + scheduler APIs — no scenario machinery — to show how the
//! plan/commit placement protocol and the RC-aware policy compose.
//!
//! Run with:
//! ```sh
//! cargo run --release --example reconfigurable_cluster
//! ```

use teragrid_repro::prelude::*;
use tg_model::config::ProcessorConfig;
use tg_model::reconf::RcPartition;
use tg_model::NodeId;
use tg_sched::RcDecision;
use tg_workload::{ProjectId, RcRequirement, UserId};

fn main() {
    // A library of three kernels with different footprints and speedups.
    let mut library = ConfigLibrary::new();
    let sw = library.add(ProcessorConfig::new("smith-waterman", 4, 25.0));
    let fft = library.add(ProcessorConfig::new("fft-1d", 2, 8.0));
    let aes = library.add(ProcessorConfig::new("aes-ctr", 3, 12.0));

    // Four nodes of 8 area units each, caching up to 4 bitstreams.
    let mut fabric = RcPartition::new(SimTime::ZERO, 4, 8, 4);
    let policy = RcPolicy::AWARE;
    let fetch = |_c| SimDuration::from_millis(400); // WAN fetch price

    // A little stream of tasks cycling through the kernels.
    let kernels = [sw, fft, aes, sw, sw, fft, aes, sw, fft, sw];
    let mut now = SimTime::ZERO;
    println!("time       task  kernel          decision");
    for (i, &config) in kernels.iter().enumerate() {
        let job = Job::batch(
            JobId(i),
            UserId(0),
            ProjectId(0),
            now,
            1,
            SimDuration::from_secs(120),
        )
        .with_rc(RcRequirement {
            config,
            speedup: library.get(config).speedup,
            deadline: None,
        });
        let decision = policy.decide(&job, &fabric, &library, fetch, now, 1.0);
        match decision {
            RcDecision::PlaceHw { node, plan, setup } => {
                let reused = matches!(plan, tg_model::reconf::HostPlan::Reuse(_));
                let region = fabric.node_mut(node).commit(plan, config, &library, now);
                let exec = now + setup.total();
                let end = exec + job.runtime_on(1.0, true);
                println!(
                    "{now:<9}  {:<4}  {:<14}  {} on {node} (setup {}, done {end})",
                    job.id,
                    library.get(config).name,
                    if reused { "REUSE    " } else { "CONFIGURE" },
                    setup.total(),
                );
                fabric.node_mut(node).finish(region, end);
            }
            RcDecision::RunSw => println!(
                "{now:<9}  {:<4}  {:<14}  software fallback",
                job.id,
                library.get(config).name
            ),
            RcDecision::Defer => println!(
                "{now:<9}  {:<4}  {:<14}  deferred (fabric busy)",
                job.id,
                library.get(config).name
            ),
        }
        now += SimDuration::from_secs(30);
    }

    let stats = fabric.total_stats();
    println!(
        "\nfabric: {} tasks, {} reuses, {} reconfigurations, {} bitstream fetches, {} hits",
        stats.completed,
        stats.reuses,
        stats.reconfigs,
        stats.bitstream_fetches,
        stats.bitstream_hits
    );
    println!(
        "wasted-area integral: {:.0} area-seconds over {} of simulated time",
        fabric.wasted_area_integral(now),
        now
    );
    let _ = NodeId(0);
}
