//! The federation's "annual report": every measurement product in one run —
//! usage by modality, by field of science, per-site utilization with a
//! sampled time series, classifier accuracy, and a survey cross-check.
//!
//! Run with:
//! ```sh
//! cargo run --release --example federation_report
//! ```

use teragrid_repro::prelude::*;
use tg_core::report::GatewayReach;
use tg_core::survey::{run_survey, true_user_shares, SurveyDesign};
use tg_des::StreamId;

fn main() {
    let mut cfg = ScenarioConfig::baseline(400, 21);
    cfg.sample_interval = Some(SimDuration::from_hours(6));
    let out = cfg.build().run_with(77, &RunOptions::with_metrics());

    println!("=== usage by modality (ground truth labels) ===");
    let report = UsageReport::compute(&out.db, &out.truth, &out.charge_policy);
    println!("{}", report.shares);

    println!("=== usage by field of science ===");
    let fields = FieldShares::compute(&out.db, &out.population.projects, &out.charge_policy);
    println!("{fields}");

    println!("=== gateway reach (from end-user attributes) ===");
    let reach = GatewayReach::compute(&out.db);
    println!("{reach}");
    println!(
        "{} distinct end users served through {} gateways — visible as only {} accounts\n",
        reach.total_end_users(),
        reach.rows.len(),
        reach.rows.len(),
    );

    println!("=== sites ===");
    for s in &out.site_stats {
        println!(
            "{:<8} utilization {:>5.1}%  jobs {:>7}  rc tasks {:>6}",
            s.name,
            100.0 * s.utilization,
            s.jobs_finished,
            s.rc_stats.completed
        );
    }
    // Busiest sampled instant across the run.
    if let Some(peak) = out.samples.iter().max_by(|a, b| {
        let fa: f64 = a.busy_fraction.iter().sum();
        let fb: f64 = b.busy_fraction.iter().sum();
        fa.partial_cmp(&fb).expect("finite")
    }) {
        println!(
            "peak sampled load at {}: {:?}",
            peak.at,
            peak.busy_fraction
                .iter()
                .map(|f| format!("{:.0}%", 100.0 * f))
                .collect::<Vec<_>>()
        );
    }

    println!("\n=== measurement quality ===");
    for mode in [ClassifierMode::WithAttributes, ClassifierMode::RecordsOnly] {
        let inferred = classify_all(&out.db, mode);
        let acc = Accuracy::score(&out.truth, &inferred);
        println!(
            "classifier [{}]: accuracy {:.3}, macro-F1 {:.3}",
            mode.name(),
            acc.accuracy,
            acc.macro_f1
        );
    }

    println!("\n=== run metrics ===");
    let snap = out.metrics.as_ref().expect("metrics requested");
    println!("{}", MetricsReport(snap));

    // Survey cross-check against the same population.
    let truth = true_user_shares(&out.population.users);
    let mut rng = RngFactory::new(77).stream(StreamId::global("report-survey"));
    let survey = run_survey(&out.population.users, &SurveyDesign::realistic(), &mut rng);
    println!(
        "survey: {} invited, {} responded; gateway user share truth {:.1}% → \
         naive {:.1}% → weighted {:.1}%",
        survey.invited,
        survey.responded,
        100.0 * truth[Modality::ScienceGateway.index()],
        100.0 * survey.naive_share[Modality::ScienceGateway.index()],
        100.0 * survey.weighted_share[Modality::ScienceGateway.index()],
    );
}
