//! Gateway surge: what happens to the *measured* picture of the federation
//! when a science gateway's community doubles, then doubles again?
//!
//! This is the scenario that motivated the paper's measurement program: the
//! gateway submits everything under one community account, so per-account
//! accounting sees a single (very busy) "user" while the real human
//! population grows by hundreds. The gateway end-user attributes recover
//! the truth.
//!
//! Run with:
//! ```sh
//! cargo run --release --example gateway_surge
//! ```

use std::collections::HashSet;
use teragrid_repro::prelude::*;

fn main() {
    println!("surge  gw-users  visible-accts  distinct-end-users  gw-jobs  gw-NU%");
    for (stage, gw_users) in [(0, 60usize), (1, 120), (2, 240)] {
        let mut cfg = ScenarioConfig::baseline(320, 14);
        cfg.workload.mix.users_per_modality[Modality::ScienceGateway.index()] = gw_users;
        cfg.name = format!("surge-{stage}");
        let out = cfg.build().run(500 + stage);

        let shares = ModalityShares::compute(&out.db, &out.truth, &out.charge_policy);
        // Accounts visible to classic accounting:
        let visible = shares.accounts[Modality::ScienceGateway.index()];
        // People visible through the gateway attributes:
        let end_users: HashSet<u64> = out.db.gateway_attrs.iter().map(|a| a.end_user).collect();
        println!(
            "{stage:>5}  {gw_users:>8}  {visible:>13}  {:>18}  {:>7}  {:>5.1}%",
            end_users.len(),
            shares.jobs[Modality::ScienceGateway.index()],
            100.0 * shares.nu_share(Modality::ScienceGateway),
        );
    }
    println!(
        "\nWithout end-user attributes the surge is invisible: the community\n\
         accounts column stays flat while the real user base quadruples."
    );
}
