//! Property-based integration tests: random small scenarios must always
//! satisfy the pipeline's conservation and consistency invariants, and the
//! workload layer's artifacts must round-trip.

use proptest::prelude::*;
use teragrid_repro::prelude::*;

/// A small random-but-valid scenario configuration.
fn arb_scenario() -> impl Strategy<Value = (ScenarioConfig, u64)> {
    (
        2usize..30,   // batch users
        0usize..20,   // interactive users
        0usize..15,   // gateway users
        0usize..6,    // workflow users
        0usize..8,    // rc users
        1u64..5,      // days
        0usize..3,    // scheduler index
        any::<u64>(), // seed
    )
        .prop_map(|(batch, inter, gw, wf, rc, days, sched, seed)| {
            let site_a = SiteConfig {
                batch_nodes: 32,
                ..SiteConfig::medium("a")
            };
            let site_b = SiteConfig {
                batch_nodes: 24,
                rc_nodes: if rc > 0 { 4 } else { 0 },
                rc_area_per_node: 8,
                ..SiteConfig::medium("b")
            };
            let mut mix = PopulationMix::baseline(0);
            mix.users_per_modality = [0; Modality::ALL.len()];
            mix.users_per_modality[Modality::BatchComputing.index()] = batch;
            mix.users_per_modality[Modality::Interactive.index()] = inter;
            mix.users_per_modality[Modality::ScienceGateway.index()] = gw;
            mix.users_per_modality[Modality::Workflow.index()] = wf;
            mix.users_per_modality[Modality::RcAccelerated.index()] = rc;
            let scheduler = [
                SchedulerKind::Fcfs,
                SchedulerKind::Easy,
                SchedulerKind::Conservative,
            ][sched];
            let cfg = ScenarioConfig {
                name: "prop".into(),
                sites: vec![site_a, site_b],
                data_home: 0,
                scheduler,
                meta: MetaPolicy::LeastLoaded,
                rc_policy: RcPolicy::AWARE,
                workload: GeneratorConfig {
                    horizon: SimDuration::from_days(days),
                    mix,
                    profiles: ModalityProfile::all_defaults(),
                    sites: 2,
                    rc_sites: if rc > 0 { vec![SiteId(1)] } else { vec![] },
                    rc_config_count: if rc > 0 { 6 } else { 0 },
                    data: None,
                },
                library: None,
                sample_interval: None,
                faults: None,
                data: None,
            };
            (cfg, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case runs a full simulation
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_scenarios_conserve_jobs_and_stay_consistent((cfg, seed) in arb_scenario()) {
        let generated = WorkloadGenerator::new(cfg.workload.clone())
            .generate(&RngFactory::new(seed))
            .jobs
            .len();
        let out = cfg.build().run(seed);
        // Conservation.
        prop_assert_eq!(out.db.jobs.len(), generated);
        // Consistency of every record.
        for r in &out.db.jobs {
            prop_assert!(r.start >= r.submit);
            prop_assert!(r.end > r.start);
            prop_assert!(r.site.index() < 2);
            prop_assert!(r.end <= out.end);
        }
        // Clusters fully drained.
        for s in &out.site_stats {
            prop_assert!(s.utilization >= 0.0 && s.utilization <= 1.0);
        }
        // Every completed job has exactly one truth label.
        for r in &out.db.jobs {
            prop_assert!(out.truth_of(r.job).is_some());
        }
    }

    #[test]
    fn classifier_always_labels_every_job((cfg, seed) in arb_scenario()) {
        let out = cfg.build().run(seed);
        for mode in [ClassifierMode::WithAttributes, ClassifierMode::RecordsOnly] {
            let inferred = classify_all(&out.db, mode);
            prop_assert_eq!(inferred.len(), out.db.jobs.len());
        }
        let inferred = classify_all(&out.db, ClassifierMode::WithAttributes);
        let acc = Accuracy::score(&out.truth, &inferred);
        prop_assert!(acc.accuracy >= 0.0 && acc.accuracy <= 1.0);
        prop_assert!(acc.macro_f1 >= 0.0 && acc.macro_f1 <= 1.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    #[test]
    fn swf_roundtrip_preserves_core_fields(
        users in 1usize..20,
        days in 1u64..4,
        seed in any::<u64>(),
    ) {
        let cfg = GeneratorConfig::baseline(users.max(7) * 7, days, 2);
        let w = WorkloadGenerator::new(cfg).generate(&RngFactory::new(seed));
        let text = tg_workload::swf::to_swf(&w.jobs);
        let back = tg_workload::swf::from_swf(&text).unwrap();
        prop_assert_eq!(back.len(), w.jobs.len());
        for (a, b) in w.jobs.iter().zip(&back) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.cores, b.cores);
            prop_assert_eq!(a.true_modality, b.true_modality);
            // Times round-trip at SWF's one-second resolution.
            let dt = a.submit_time.as_secs_f64() - b.submit_time.as_secs_f64();
            prop_assert!(dt.abs() < 1.0);
        }
    }

    #[test]
    fn shares_are_a_probability_distribution(
        users in 30usize..120,
        seed in any::<u64>(),
    ) {
        let mut cfg = ScenarioConfig::baseline(users, 2);
        cfg.sites[0].batch_nodes = 32;
        cfg.sites[1].batch_nodes = 32;
        cfg.sites[2].batch_nodes = 16;
        let out = cfg.build().run(seed);
        let shares = ModalityShares::compute(&out.db, &out.truth, &out.charge_policy);
        let nu_total: f64 = Modality::ALL.iter().map(|&m| shares.nu_share(m)).sum();
        let job_total: f64 = Modality::ALL.iter().map(|&m| shares.job_share(m)).sum();
        if shares.total_jobs() > 0 {
            prop_assert!((nu_total - 1.0).abs() < 1e-9);
            prop_assert!((job_total - 1.0).abs() < 1e-9);
        }
    }
}
