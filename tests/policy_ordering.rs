//! Cross-crate policy-ordering checks: the qualitative relationships the
//! evaluation section relies on must hold on small instances too.

use teragrid_repro::prelude::*;

/// One site, one modality, moderate pressure.
fn single_site(kind: SchedulerKind, seed_name: &str) -> ScenarioConfig {
    let site = SiteConfig {
        batch_nodes: 64, // × 8 = 512 cores
        ..SiteConfig::medium("one")
    };
    let mut mix = PopulationMix::baseline(0);
    mix.users_per_modality = [0; Modality::ALL.len()];
    mix.users_per_modality[Modality::BatchComputing.index()] = 7;
    mix.users_per_modality[Modality::Interactive.index()] = 10;
    let mut profiles = ModalityProfile::all_defaults();
    // Keep jobs inside the small machine.
    profiles[Modality::BatchComputing.index()].cores_weights =
        vec![(16, 30.0), (32, 25.0), (64, 20.0), (128, 15.0), (256, 10.0)];
    ScenarioConfig {
        name: format!("{seed_name}-{}", kind.name()),
        sites: vec![site],
        data_home: 0,
        scheduler: kind,
        meta: MetaPolicy::ShortestEta,
        rc_policy: RcPolicy::AWARE,
        workload: GeneratorConfig {
            horizon: SimDuration::from_days(10),
            mix,
            profiles,
            sites: 1,
            rc_sites: vec![],
            rc_config_count: 0,
            data: None,
        },
        library: None,
        sample_interval: None,
        faults: None,
        data: None,
    }
}

fn mean_wait_small_jobs(out: &SimOutput) -> f64 {
    let small: Vec<_> = out.db.jobs.iter().filter(|j| j.cores <= 8).collect();
    small.iter().map(|j| j.wait().as_secs_f64()).sum::<f64>() / small.len().max(1) as f64
}

#[test]
fn backfilling_beats_fcfs_for_small_jobs() {
    let fcfs = single_site(SchedulerKind::Fcfs, "order").build().run(5);
    let easy = single_site(SchedulerKind::Easy, "order").build().run(5);
    let cons = single_site(SchedulerKind::Conservative, "order")
        .build()
        .run(5);
    let w_fcfs = mean_wait_small_jobs(&fcfs);
    let w_easy = mean_wait_small_jobs(&easy);
    let w_cons = mean_wait_small_jobs(&cons);
    assert!(
        w_easy <= w_fcfs,
        "EASY small-job wait {w_easy} must not exceed FCFS {w_fcfs}"
    );
    assert!(
        w_cons <= w_fcfs,
        "conservative small-job wait {w_cons} must not exceed FCFS {w_fcfs}"
    );
}

#[test]
fn all_schedulers_complete_the_same_job_set() {
    let mut counts = Vec::new();
    for kind in [
        SchedulerKind::Fcfs,
        SchedulerKind::Easy,
        SchedulerKind::Conservative,
        SchedulerKind::WeeklyDrain,
    ] {
        let out = single_site(kind, "conserve").build().run(6);
        counts.push(out.db.jobs.len());
    }
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
}

#[test]
fn rc_aware_never_loses_to_blind_on_turnaround() {
    use tg_bench::{rc_only_config, rc_tasks_per_day_for_load, synthetic_library};
    let rate = rc_tasks_per_day_for_load(8, 8, 0.6);
    let mut turnarounds = Vec::new();
    for policy in [RcPolicy::AWARE, RcPolicy::BLIND] {
        let mut cfg = rc_only_config(8, 8, rate, 1, 12);
        cfg.rc_policy = policy;
        cfg.library = Some(synthetic_library(12, SimDuration::from_secs(15), 1.0));
        let out = cfg.build().run(9);
        let mean = out
            .db
            .jobs
            .iter()
            .map(|j| j.end.saturating_since(j.submit).as_secs_f64())
            .sum::<f64>()
            / out.db.jobs.len().max(1) as f64;
        turnarounds.push(mean);
    }
    assert!(
        turnarounds[0] <= turnarounds[1] * 1.01,
        "aware {} vs blind {}",
        turnarounds[0],
        turnarounds[1]
    );
}

#[test]
fn metascheduler_eta_beats_random_under_imbalance() {
    let build = |policy: MetaPolicy, seed: u64| {
        let mut cfg = single_site(SchedulerKind::Easy, "meta");
        // Two sites, very different sizes; users unpinned.
        cfg.sites = vec![
            SiteConfig {
                batch_nodes: 16,
                ..SiteConfig::medium("tiny")
            },
            SiteConfig {
                batch_nodes: 128,
                ..SiteConfig::medium("big")
            },
        ];
        cfg.workload.sites = 2;
        cfg.meta = policy;
        for m in Modality::ALL {
            cfg.workload.profile_mut(m).site_pinned_prob = 0.0;
        }
        cfg.build().run(seed)
    };
    let eta: f64 = (0..3)
        .map(|s| build(MetaPolicy::ShortestEta, s).mean_wait_secs())
        .sum();
    let rnd: f64 = (0..3)
        .map(|s| build(MetaPolicy::Random, s).mean_wait_secs())
        .sum();
    assert!(
        eta <= rnd,
        "ETA mean wait {eta} should not exceed random {rnd}"
    );
}
