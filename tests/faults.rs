//! Fault-injection integration tests: the fault layer is provably inert
//! when disabled, fully deterministic when enabled, visible end to end in
//! the span stream, and its lossy ingest degrades measurement coverage
//! monotonically while never touching ground truth.

use std::collections::BTreeMap;
use std::io::BufRead;
use std::path::PathBuf;
use teragrid_repro::prelude::*;
use tg_des::TraceAnalyzer;

/// A unique scratch path for one test's trace file.
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tg-faults-{tag}-{}.jsonl", std::process::id()))
}

/// One announced outage plus a crash trickle on the shrunk baseline.
fn eventful_spec() -> FaultSpec {
    FaultSpec {
        node_crashes: Some(NodeCrashSpec {
            mtbf_hours: 36.0,
            repair_hours: 2.0,
            cores_per_crash: 64,
            horizon_days: 7.0,
        }),
        site_outages: vec![OutageWindow {
            site: 1,
            start_hours: 72.0,
            duration_hours: 12.0,
            notice_hours: 2.0,
        }],
        wan_degradations: vec![DegradeWindow {
            site: 2,
            start_hours: 24.0,
            duration_hours: 12.0,
            bandwidth_factor: 8.0,
            latency_factor: 4.0,
        }],
        ingest: Some(IngestFaults {
            loss: 0.02,
            duplication: 0.005,
        }),
        retry: None,
        outage_policy: OutagePolicy::Requeue,
    }
}

fn small() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::baseline(120, 7);
    cfg.sites[0].batch_nodes = 64;
    cfg.sites[1].batch_nodes = 128;
    cfg.sites[2].batch_nodes = 32;
    cfg
}

fn assert_identical(a: &SimOutput, b: &SimOutput, what: &str) {
    assert_eq!(
        format!("{:?}", a.db),
        format!("{:?}", b.db),
        "{what}: accounting database diverged"
    );
    assert_eq!(a.end, b.end, "{what}: end time diverged");
    assert_eq!(
        a.events_delivered, b.events_delivered,
        "{what}: event count diverged"
    );
    assert_eq!(a.site_stats, b.site_stats, "{what}: site stats diverged");
    let sorted = |m: &std::collections::HashMap<JobId, Modality>| {
        m.iter()
            .map(|(k, v)| (*k, *v))
            .collect::<BTreeMap<JobId, Modality>>()
    };
    assert_eq!(sorted(&a.truth), sorted(&b.truth), "{what}: truth diverged");
}

#[test]
fn faults_disabled_is_byte_identical_to_no_fault_layer() {
    // `faults: None` and a trivial (empty) spec must both produce exactly
    // the run a build of this crate without the fault subsystem produced:
    // same records, same event count, same end, same truth.
    let plain = small().build().run(31);

    let mut none_cfg = small();
    none_cfg.faults = None;
    assert_identical(&plain, &none_cfg.build().run(31), "faults: None");

    let mut trivial_cfg = small();
    trivial_cfg.faults = Some(FaultSpec::default());
    let trivial = trivial_cfg.build().run(31);
    assert_identical(&plain, &trivial, "trivial spec");
    assert!(
        trivial.fault_report.is_none(),
        "a trivial spec must not even attach the fault layer"
    );
}

#[test]
fn same_seed_same_faults_same_output() {
    let mut cfg = small();
    cfg.faults = Some(eventful_spec());
    let a = cfg.clone().build().run(99);
    let b = cfg.build().run(99);
    assert_identical(&a, &b, "repeat run");
    let (ra, rb) = (a.fault_report.unwrap(), b.fault_report.unwrap());
    assert_eq!(ra, rb, "fault reports diverged between identical runs");
    assert!(ra.node_crashes > 0, "spec should produce crashes");
    assert_eq!(ra.site_outages, 1);
}

#[test]
fn same_seed_same_compiled_schedule() {
    let factory = RngFactory::new(4711);
    let spec = eventful_spec();
    let cores = [512usize, 1024, 256];
    let a = spec.compile(&cores, &factory);
    let b = spec.compile(&cores, &factory);
    assert_eq!(a.events.len(), b.events.len());
    for (x, y) in a.events.iter().zip(&b.events) {
        assert_eq!(x.at, y.at);
        assert_eq!(format!("{:?}", x.kind), format!("{:?}", y.kind));
    }
    // A different seed reshuffles the stochastic part (node crashes).
    let c = spec.compile(&cores, &RngFactory::new(4712));
    assert!(
        a.events.len() != c.events.len()
            || a.events
                .iter()
                .zip(&c.events)
                .any(|(x, y)| x.at != y.at || format!("{:?}", x.kind) != format!("{:?}", y.kind)),
        "different seeds produced an identical crash schedule"
    );
}

#[test]
fn outage_run_emits_fault_and_requeue_spans_the_analyzer_counts() {
    let mut cfg = small();
    cfg.faults = Some(eventful_spec());
    let path = scratch("spans");
    let opts = RunOptions {
        metrics: false,
        trace_path: Some(path.clone()),
        ..RunOptions::default()
    };
    let out = cfg.build().run_with(99, &opts);
    let health = out.trace_health.expect("trace requested");
    assert!(health.sink_clean(), "trace writes failed: {health:?}");
    let report = out.fault_report.expect("fault layer attached");
    assert!(report.jobs_killed > 0, "outage should kill running work");
    assert!(report.jobs_requeued > 0);
    assert!(report.records_lost > 0, "lossy ingest should drop records");

    let file = std::fs::File::open(&path).expect("trace file exists");
    let mut analyzer = TraceAnalyzer::new();
    for line in std::io::BufReader::new(file).lines() {
        analyzer.add_line(&line.expect("readable line"));
    }
    let _ = std::fs::remove_file(&path);
    let analysis = analyzer.finish();
    let count = |kind: &str| {
        analysis
            .by_kind
            .get(kind)
            .map(|s| s.count)
            .unwrap_or_default()
    };
    assert!(count("fault") > 0, "no fault spans in the trace");
    assert!(count("requeue") > 0, "no requeue spans in the trace");
    assert!(
        count("fault") >= report.jobs_killed,
        "every kill emits a fault span"
    );
}

#[test]
fn ingest_loss_degrades_coverage_monotonically_and_spares_truth() {
    let mut kept = Vec::new();
    let mut truth_sizes = Vec::new();
    for (i, loss) in [0.0f64, 0.1, 0.3].into_iter().enumerate() {
        let mut cfg = small();
        if loss > 0.0 {
            cfg.faults = Some(FaultSpec {
                ingest: Some(IngestFaults {
                    loss,
                    duplication: 0.0,
                }),
                ..FaultSpec::default()
            });
        }
        let out = cfg.build().run(7);
        kept.push(out.db.jobs.len());
        truth_sizes.push(out.truth.len());
        if i > 0 {
            let lost = out.fault_report.expect("lossy run").records_lost;
            assert!(lost > 0, "loss {loss} dropped nothing");
        }
    }
    assert!(
        kept[0] > kept[1] && kept[1] > kept[2],
        "record survival must shrink with the loss rate: {kept:?}"
    );
    assert_eq!(
        truth_sizes[0], truth_sizes[1],
        "ground truth must not depend on ingest loss"
    );
    assert_eq!(truth_sizes[1], truth_sizes[2]);
}
