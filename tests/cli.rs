//! Integration tests for the `tgsim` CLI binary.

use std::process::Command;

fn tgsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tgsim"))
}

#[test]
fn emit_baseline_produces_valid_config() {
    let out = tgsim()
        .args(["emit-baseline", "40", "2"])
        .output()
        .expect("tgsim runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    let cfg: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    assert_eq!(cfg["sites"].as_array().expect("sites").len(), 3);
    assert_eq!(cfg["scheduler"], "easy");
    assert_eq!(cfg["workload"]["sites"], 3);
}

#[test]
fn run_executes_a_config_end_to_end() {
    let dir = std::env::temp_dir().join(format!("tgsim-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let scen = dir.join("scenario.json");
    let summary = dir.join("summary.json");

    let emit = tgsim()
        .args(["emit-baseline", "40", "2"])
        .output()
        .expect("emit runs");
    std::fs::write(&scen, &emit.stdout).expect("write scenario");

    let run = tgsim()
        .args([
            "run",
            scen.to_str().expect("utf8 path"),
            "--seed",
            "9",
            "--classify",
            "--sample-hours",
            "12",
            "--out",
            summary.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run executes");
    assert!(
        run.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(stdout.contains("NU%"), "usage report printed");
    assert!(stdout.contains("classifier [with-attributes]"));

    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&summary).expect("summary written"))
            .expect("summary is JSON");
    assert!(parsed["jobs"].as_u64().expect("jobs") > 0);
    assert!(!parsed["samples"].as_array().expect("samples").is_empty());
    assert_eq!(parsed["seed"], 9);

    // Same seed reproduces the same job count.
    let rerun = tgsim()
        .args(["run", scen.to_str().expect("utf8"), "--seed", "9"])
        .output()
        .expect("rerun executes");
    let text = String::from_utf8_lossy(&rerun.stdout).to_string()
        + &String::from_utf8_lossy(&rerun.stderr);
    let jobs = parsed["jobs"].as_u64().expect("jobs");
    assert!(
        text.contains(&format!("{jobs} jobs")),
        "deterministic job count {jobs} not found in: {text}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_drives_an_swf_trace_with_faults() {
    use teragrid_repro::prelude::*;
    let dir = std::env::temp_dir().join(format!("tgsim-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("trace.swf");

    // Export a small generated workload to SWF — the archive-trace pathway.
    let gen_cfg = GeneratorConfig::baseline(40, 2, 3);
    let workload = WorkloadGenerator::new(gen_cfg).generate(&RngFactory::new(7));
    let n_jobs = workload.jobs.len();
    std::fs::write(&trace, tg_workload::swf::to_swf(&workload.jobs)).expect("write trace");

    let faults = concat!(env!("CARGO_MANIFEST_DIR"), "/configs/faults-demo.json");
    let run = tgsim()
        .args([
            "replay",
            trace.to_str().expect("utf8 path"),
            "--seed",
            "7",
            "--faults",
            faults,
            "--classify",
        ])
        .output()
        .expect("replay executes");
    assert!(
        run.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(
        stdout.contains(&format!("of {n_jobs} jobs finished")),
        "replay reports the trace's job count: {stdout}"
    );
    assert!(
        stdout.contains("faults:"),
        "fault report printed for a faulted replay: {stdout}"
    );
    assert!(stdout.contains("classifier on replayed trace"));

    // Same trace, same seed: byte-identical summary line (determinism
    // holds through the SWF round trip and the fault schedule).
    let rerun = tgsim()
        .args([
            "replay",
            trace.to_str().expect("utf8"),
            "--seed",
            "7",
            "--faults",
            faults,
        ])
        .output()
        .expect("rerun executes");
    assert!(rerun.status.success());
    let line = |s: &str| {
        s.lines()
            .find(|l| l.starts_with("replay complete"))
            .expect("summary line")
            .to_string()
    };
    assert_eq!(line(&stdout), line(&String::from_utf8_lossy(&rerun.stdout)));

    // Bad trace fails cleanly.
    let bad = tgsim()
        .args(["replay", "/nonexistent/trace.swf"])
        .output()
        .expect("runs");
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("cannot read"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stream_out_diverts_records_and_matches_retained_run() {
    let dir = std::env::temp_dir().join(format!("tgsim-stream-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let scen = dir.join("scenario.json");
    let records = dir.join("records.jsonl");

    let emit = tgsim()
        .args(["emit-baseline", "40", "2"])
        .output()
        .expect("emit runs");
    std::fs::write(&scen, &emit.stdout).expect("write scenario");

    let retained = tgsim()
        .args(["run", scen.to_str().expect("utf8"), "--seed", "11"])
        .output()
        .expect("retained run");
    assert!(retained.status.success());
    let retained_text = String::from_utf8_lossy(&retained.stdout).to_string()
        + &String::from_utf8_lossy(&retained.stderr);

    let streamed = tgsim()
        .args([
            "run",
            scen.to_str().expect("utf8"),
            "--seed",
            "11",
            "--stream-out",
            records.to_str().expect("utf8 path"),
            "--assert-peak-rss-mb",
            "2048",
        ])
        .output()
        .expect("streamed run");
    assert!(
        streamed.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&streamed.stderr)
    );
    let stdout = String::from_utf8_lossy(&streamed.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("streamed "))
        .expect("tally line printed");
    let total: u64 = line
        .split_whitespace()
        .nth(1)
        .expect("record count")
        .parse()
        .expect("numeric");
    let text = std::fs::read_to_string(&records).expect("records written");
    assert_eq!(text.lines().count() as u64, total, "JSONL file complete");
    assert!(stdout.contains("memory: peak RSS"), "budget line: {stdout}");

    // The streamed simulation is the retained simulation: same job count.
    let jobs = line.split('(').nth(1).expect("kinds").to_string();
    let jobs: u64 = jobs
        .split_whitespace()
        .next()
        .expect("jobs count")
        .parse()
        .expect("numeric");
    assert!(
        retained_text.contains(&format!("{jobs} jobs")),
        "streamed job count {jobs} not found in retained output: {retained_text}"
    );

    // --stream-out diverts records away from the report path: --classify
    // needs the retained database, so the combination is refused.
    let conflict = tgsim()
        .args([
            "run",
            scen.to_str().expect("utf8"),
            "--stream-out",
            records.to_str().expect("utf8 path"),
            "--classify",
        ])
        .output()
        .expect("runs");
    assert!(!conflict.status.success());
    assert!(
        String::from_utf8_lossy(&conflict.stderr).contains("--classify"),
        "conflict names the flag"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn live_stats_streams_buckets_and_lands_in_the_summary() {
    let dir = std::env::temp_dir().join(format!("tgsim-livestats-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let scen = dir.join("scenario.json");
    let rows = dir.join("series.jsonl");
    let summary = dir.join("summary.json");

    let emit = tgsim()
        .args(["emit-baseline", "40", "2"])
        .output()
        .expect("emit runs");
    std::fs::write(&scen, &emit.stdout).expect("write scenario");

    let run = tgsim()
        .args([
            "run",
            scen.to_str().expect("utf8"),
            "--seed",
            "3",
            &format!("--live-stats={}", rows.to_str().expect("utf8 path")),
            "--out",
            summary.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run executes");
    assert!(
        run.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    let stdout = String::from_utf8_lossy(&run.stdout);
    let live_line = stdout
        .lines()
        .find(|l| l.starts_with("live stats:"))
        .expect("live stats line printed")
        .to_string();

    // The streamed file is one JSON object per closed hourly bucket, with
    // the documented schema.
    let text = std::fs::read_to_string(&rows).expect("series file written");
    let parsed: Vec<serde_json::Value> = text
        .lines()
        .map(|l| serde_json::from_str(l).expect("row parses"))
        .collect();
    assert!(parsed.len() > 24, "2-day run closes >24 hourly buckets");
    for row in &parsed {
        for key in [
            "bucket",
            "t_end_s",
            "submitted",
            "started",
            "completed",
            "active",
            "utilization",
            "queue_depth",
        ] {
            assert!(!row[key].is_null(), "row missing {key}: {row}");
        }
    }

    // The summary JSON carries the full deterministic stats report.
    let summary: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&summary).expect("summary written"))
            .expect("summary is JSON");
    let stats = &summary["stats"];
    assert!(stats["spans"]["spans"].as_u64().expect("span count") > 0);
    assert!(!stats["spans"]["by_kind"]["queued"].is_null());
    assert_eq!(
        stats["series"]["rows"].as_array().expect("rows").len(),
        parsed.len(),
        "streamed rows == snapshot rows"
    );

    // Bare --live-stats works sharded, and the report is byte-identical to
    // the serial one (per-shard sketches merge exactly).
    let sharded = tgsim()
        .args([
            "run",
            scen.to_str().expect("utf8"),
            "--seed",
            "3",
            "--live-stats",
            "--threads",
            "4",
        ])
        .output()
        .expect("sharded run");
    assert!(
        sharded.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&sharded.stderr)
    );
    let sharded_stdout = String::from_utf8_lossy(&sharded.stdout);
    let sharded_line = sharded_stdout
        .lines()
        .find(|l| l.starts_with("live stats:"))
        .expect("sharded live stats line");
    assert_eq!(live_line, sharded_line, "live stats diverge under sharding");

    // --live-stats=FILE is serial-only: multiple replications would clobber
    // the one file, so the combination is refused.
    let conflict = tgsim()
        .args([
            "run",
            scen.to_str().expect("utf8"),
            &format!("--live-stats={}", rows.to_str().expect("utf8")),
            "--reps",
            "2",
        ])
        .output()
        .expect("runs");
    assert!(!conflict.status.success());
    assert!(
        String::from_utf8_lossy(&conflict.stderr).contains("--live-stats=FILE"),
        "conflict names the flag"
    );
    let empty = tgsim()
        .args(["run", scen.to_str().expect("utf8"), "--live-stats="])
        .output()
        .expect("runs");
    assert!(!empty.status.success(), "--live-stats= without a file");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite check: `tgsim analyze` streams line-by-line (BufReader), so a
/// trace far larger than any in-test simulation must analyze correctly with
/// exact counts. The trace is synthesized directly in the span-line schema.
#[test]
fn analyze_handles_a_large_synthetic_trace() {
    let dir = std::env::temp_dir().join(format!("tgsim-bigtrace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("big.jsonl");

    const JOBS: u64 = 100_000;
    {
        use std::io::Write;
        let mut w = std::io::BufWriter::new(std::fs::File::create(&trace).expect("create"));
        for job in 0..JOBS {
            // queued (60s, cause cycles) then run (600s), site cycles 0..3.
            let t0 = job as f64;
            let cause = ["ahead-in-queue", "drain-window", "immediate"][(job % 3) as usize];
            let site = job % 3;
            writeln!(
                w,
                "{{\"t\":{t1},\"cat\":\"span\",\"fields\":{{\"v\":1,\"job\":{job},\
                 \"kind\":\"queued\",\"t0\":{t0},\"t1\":{t1},\"site\":{site},\
                 \"cause\":\"{cause}\",\"modality\":\"batch\"}}}}",
                t1 = t0 + 60.0,
            )
            .expect("write");
            writeln!(
                w,
                "{{\"t\":{t1},\"cat\":\"span\",\"fields\":{{\"v\":1,\"job\":{job},\
                 \"kind\":\"run\",\"t0\":{t0},\"t1\":{t1},\"site\":{site},\
                 \"modality\":\"batch\"}}}}",
                t0 = t0 + 60.0,
                t1 = t0 + 660.0,
            )
            .expect("write");
            // Interleave non-span noise the analyzer must skip, not choke on.
            if job % 10 == 0 {
                writeln!(w, "{{\"t\":{t0},\"cat\":\"sched\",\"fields\":{{}}}}").expect("write");
            }
        }
    }

    let out = tgsim()
        .args(["analyze", trace.to_str().expect("utf8"), "--json"])
        .output()
        .expect("analyze runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("analysis is JSON");
    assert_eq!(v["span_lines"].as_u64().expect("spans"), 2 * JOBS);
    assert_eq!(v["skipped"].as_u64().expect("skipped"), JOBS / 10);
    assert_eq!(v["jobs"].as_u64().expect("jobs"), JOBS);
    // Every job waited exactly 60s, ran exactly 600s.
    assert!((v["mean_wait_s"].as_f64().expect("mean") - 60.0).abs() < 1e-6);
    assert_eq!(v["by_kind"]["queued"]["count"].as_u64(), Some(JOBS));
    assert_eq!(v["by_kind"]["run"]["count"].as_u64(), Some(JOBS));
    assert!((v["by_kind"]["run"]["mean"].as_f64().expect("run mean") - 600.0).abs() < 1e-6);
    for cause in ["ahead-in-queue", "drain-window", "immediate"] {
        let n = v["queued_by_cause"][cause]["count"].as_u64().expect(cause);
        assert!((JOBS / 3..=JOBS / 3 + 1).contains(&n), "{cause}: {n}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_invocations_fail_cleanly() {
    let out = tgsim().output().expect("runs");
    assert!(!out.status.success());
    let out = tgsim()
        .args(["run", "/nonexistent/file.json"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
    let out = tgsim().args(["run", "Cargo.toml"]).output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid scenario"));
}

#[test]
fn checked_in_config_still_parses() {
    // Guard against config-format drift: the committed example must load.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/configs/baseline-300u-14d.json"
    );
    let text = std::fs::read_to_string(path).expect("config exists");
    let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    assert_eq!(v["sites"].as_array().expect("sites").len(), 3);
}
