//! Integration tests for the `tgsim` CLI binary.

use std::process::Command;

fn tgsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tgsim"))
}

#[test]
fn emit_baseline_produces_valid_config() {
    let out = tgsim()
        .args(["emit-baseline", "40", "2"])
        .output()
        .expect("tgsim runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    let cfg: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    assert_eq!(cfg["sites"].as_array().expect("sites").len(), 3);
    assert_eq!(cfg["scheduler"], "easy");
    assert_eq!(cfg["workload"]["sites"], 3);
}

#[test]
fn run_executes_a_config_end_to_end() {
    let dir = std::env::temp_dir().join(format!("tgsim-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let scen = dir.join("scenario.json");
    let summary = dir.join("summary.json");

    let emit = tgsim()
        .args(["emit-baseline", "40", "2"])
        .output()
        .expect("emit runs");
    std::fs::write(&scen, &emit.stdout).expect("write scenario");

    let run = tgsim()
        .args([
            "run",
            scen.to_str().expect("utf8 path"),
            "--seed",
            "9",
            "--classify",
            "--sample-hours",
            "12",
            "--out",
            summary.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run executes");
    assert!(
        run.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(stdout.contains("NU%"), "usage report printed");
    assert!(stdout.contains("classifier [with-attributes]"));

    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&summary).expect("summary written"))
            .expect("summary is JSON");
    assert!(parsed["jobs"].as_u64().expect("jobs") > 0);
    assert!(!parsed["samples"].as_array().expect("samples").is_empty());
    assert_eq!(parsed["seed"], 9);

    // Same seed reproduces the same job count.
    let rerun = tgsim()
        .args(["run", scen.to_str().expect("utf8"), "--seed", "9"])
        .output()
        .expect("rerun executes");
    let text = String::from_utf8_lossy(&rerun.stdout).to_string()
        + &String::from_utf8_lossy(&rerun.stderr);
    let jobs = parsed["jobs"].as_u64().expect("jobs");
    assert!(
        text.contains(&format!("{jobs} jobs")),
        "deterministic job count {jobs} not found in: {text}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_drives_an_swf_trace_with_faults() {
    use teragrid_repro::prelude::*;
    let dir = std::env::temp_dir().join(format!("tgsim-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("trace.swf");

    // Export a small generated workload to SWF — the archive-trace pathway.
    let gen_cfg = GeneratorConfig::baseline(40, 2, 3);
    let workload = WorkloadGenerator::new(gen_cfg).generate(&RngFactory::new(7));
    let n_jobs = workload.jobs.len();
    std::fs::write(&trace, tg_workload::swf::to_swf(&workload.jobs)).expect("write trace");

    let faults = concat!(env!("CARGO_MANIFEST_DIR"), "/configs/faults-demo.json");
    let run = tgsim()
        .args([
            "replay",
            trace.to_str().expect("utf8 path"),
            "--seed",
            "7",
            "--faults",
            faults,
            "--classify",
        ])
        .output()
        .expect("replay executes");
    assert!(
        run.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(
        stdout.contains(&format!("of {n_jobs} jobs finished")),
        "replay reports the trace's job count: {stdout}"
    );
    assert!(
        stdout.contains("faults:"),
        "fault report printed for a faulted replay: {stdout}"
    );
    assert!(stdout.contains("classifier on replayed trace"));

    // Same trace, same seed: byte-identical summary line (determinism
    // holds through the SWF round trip and the fault schedule).
    let rerun = tgsim()
        .args([
            "replay",
            trace.to_str().expect("utf8"),
            "--seed",
            "7",
            "--faults",
            faults,
        ])
        .output()
        .expect("rerun executes");
    assert!(rerun.status.success());
    let line = |s: &str| {
        s.lines()
            .find(|l| l.starts_with("replay complete"))
            .expect("summary line")
            .to_string()
    };
    assert_eq!(line(&stdout), line(&String::from_utf8_lossy(&rerun.stdout)));

    // Bad trace fails cleanly.
    let bad = tgsim()
        .args(["replay", "/nonexistent/trace.swf"])
        .output()
        .expect("runs");
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("cannot read"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stream_out_diverts_records_and_matches_retained_run() {
    let dir = std::env::temp_dir().join(format!("tgsim-stream-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let scen = dir.join("scenario.json");
    let records = dir.join("records.jsonl");

    let emit = tgsim()
        .args(["emit-baseline", "40", "2"])
        .output()
        .expect("emit runs");
    std::fs::write(&scen, &emit.stdout).expect("write scenario");

    let retained = tgsim()
        .args(["run", scen.to_str().expect("utf8"), "--seed", "11"])
        .output()
        .expect("retained run");
    assert!(retained.status.success());
    let retained_text = String::from_utf8_lossy(&retained.stdout).to_string()
        + &String::from_utf8_lossy(&retained.stderr);

    let streamed = tgsim()
        .args([
            "run",
            scen.to_str().expect("utf8"),
            "--seed",
            "11",
            "--stream-out",
            records.to_str().expect("utf8 path"),
            "--assert-peak-rss-mb",
            "2048",
        ])
        .output()
        .expect("streamed run");
    assert!(
        streamed.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&streamed.stderr)
    );
    let stdout = String::from_utf8_lossy(&streamed.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("streamed "))
        .expect("tally line printed");
    let total: u64 = line
        .split_whitespace()
        .nth(1)
        .expect("record count")
        .parse()
        .expect("numeric");
    let text = std::fs::read_to_string(&records).expect("records written");
    assert_eq!(text.lines().count() as u64, total, "JSONL file complete");
    assert!(stdout.contains("memory: peak RSS"), "budget line: {stdout}");

    // The streamed simulation is the retained simulation: same job count.
    let jobs = line.split('(').nth(1).expect("kinds").to_string();
    let jobs: u64 = jobs
        .split_whitespace()
        .next()
        .expect("jobs count")
        .parse()
        .expect("numeric");
    assert!(
        retained_text.contains(&format!("{jobs} jobs")),
        "streamed job count {jobs} not found in retained output: {retained_text}"
    );

    // --stream-out diverts records away from the report path: --classify
    // needs the retained database, so the combination is refused.
    let conflict = tgsim()
        .args([
            "run",
            scen.to_str().expect("utf8"),
            "--stream-out",
            records.to_str().expect("utf8 path"),
            "--classify",
        ])
        .output()
        .expect("runs");
    assert!(!conflict.status.success());
    assert!(
        String::from_utf8_lossy(&conflict.stderr).contains("--classify"),
        "conflict names the flag"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_invocations_fail_cleanly() {
    let out = tgsim().output().expect("runs");
    assert!(!out.status.success());
    let out = tgsim()
        .args(["run", "/nonexistent/file.json"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
    let out = tgsim().args(["run", "Cargo.toml"]).output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid scenario"));
}

#[test]
fn checked_in_config_still_parses() {
    // Guard against config-format drift: the committed example must load.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/configs/baseline-300u-14d.json"
    );
    let text = std::fs::read_to_string(path).expect("config exists");
    let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    assert_eq!(v["sites"].as_array().expect("sites").len(), 3);
}
