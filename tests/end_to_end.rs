//! Cross-crate integration: a full scenario run obeys conservation and
//! record-consistency invariants, end to end.

use std::collections::HashSet;
use teragrid_repro::prelude::*;
use tg_core::sim::COMMUNITY_ACCOUNT_BASE;

fn small_baseline() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::baseline(120, 7);
    cfg.sites[0].batch_nodes = 64;
    cfg.sites[1].batch_nodes = 128;
    cfg.sites[2].batch_nodes = 48;
    cfg
}

#[test]
fn every_generated_job_completes_exactly_once() {
    let cfg = small_baseline();
    let workload = WorkloadGenerator::new(cfg.workload.clone()).generate(&RngFactory::new(77));
    let generated: HashSet<JobId> = workload.jobs.iter().map(|j| j.id).collect();
    let out = cfg.build().run(77);
    let mut seen = HashSet::new();
    for r in &out.db.jobs {
        assert!(generated.contains(&r.job), "{} not generated", r.job);
        assert!(seen.insert(r.job), "{} completed twice", r.job);
    }
    assert_eq!(seen.len(), generated.len(), "jobs lost in the pipeline");
}

#[test]
fn records_are_internally_consistent() {
    let out = small_baseline().build().run(78);
    for r in &out.db.jobs {
        assert!(r.start >= r.submit, "{}: started before submission", r.job);
        assert!(r.end > r.start, "{}: zero/negative wall time", r.job);
        assert!(r.cores > 0);
        assert!(r.site.index() < 3);
        assert!(r.end <= out.end);
    }
    for t in &out.db.transfers {
        assert!(t.end >= t.start);
        assert!(t.mb > 0.0);
        assert_ne!(t.src, t.dst, "same-site staging is free and unrecorded");
    }
    for s in &out.db.sessions {
        assert!(s.logout > s.login);
    }
}

#[test]
fn gateway_attributes_pair_with_community_accounts() {
    let out = small_baseline().build().run(79);
    let attr_jobs: HashSet<JobId> = out.db.gateway_attrs.iter().map(|a| a.job).collect();
    let mut gateway_records = 0;
    for r in &out.db.jobs {
        let is_community = r.user.index() >= COMMUNITY_ACCOUNT_BASE;
        assert_eq!(
            is_community,
            attr_jobs.contains(&r.job),
            "{}: community account iff gateway attribute",
            r.job
        );
        if is_community {
            gateway_records += 1;
            assert_eq!(out.truth_of(r.job), Some(Modality::ScienceGateway));
        }
    }
    assert!(gateway_records > 0, "baseline must exercise gateways");
}

#[test]
fn rc_placements_pair_with_hw_records() {
    let out = small_baseline().build().run(80);
    let placement_jobs: HashSet<JobId> = out.db.rc_placements.iter().map(|p| p.job).collect();
    assert!(!placement_jobs.is_empty(), "baseline exercises the fabric");
    for r in &out.db.jobs {
        assert_eq!(
            r.used_hw,
            placement_jobs.contains(&r.job),
            "{}: used_hw iff placement record",
            r.job
        );
    }
    for p in &out.db.rc_placements {
        assert_eq!(p.site, SiteId(2), "only site 2 has fabric");
    }
}

#[test]
fn workflow_tasks_never_start_before_their_parents_end() {
    let out = small_baseline().build().run(81);
    // Reconstruct dependencies from the generated workload (same seed).
    let cfg = small_baseline();
    let workload = WorkloadGenerator::new(cfg.workload.clone()).generate(&RngFactory::new(81));
    let rec_of = |id: JobId| out.db.jobs.iter().find(|r| r.job == id);
    let mut checked = 0;
    for job in workload.jobs_of(Modality::Workflow) {
        let Some(child) = rec_of(job.id) else {
            continue;
        };
        for &dep in &job.deps {
            let parent = rec_of(dep).expect("parents complete");
            assert!(
                child.start >= parent.end,
                "{} started {} before parent {} ended {}",
                job.id,
                child.start,
                dep,
                parent.end
            );
            checked += 1;
        }
    }
    assert!(
        checked > 100,
        "expected many dependency edges, got {checked}"
    );
}

#[test]
fn charge_policy_matches_site_factors() {
    let out = small_baseline().build().run(82);
    let cfg = small_baseline();
    for r in out.db.jobs.iter().take(500) {
        let su = out.charge_policy.su(r);
        let expect = r.core_hours() * cfg.sites[r.site.index()].charge_factor;
        assert!((su - expect).abs() < 1e-9);
    }
}

#[test]
fn replications_differ_across_seeds_but_not_within() {
    let scenario = small_baseline().build();
    let reps = replicate(&scenario, 900, 2, 2);
    let again = scenario.run(900);
    assert_eq!(reps[0].output.db.jobs, again.db.jobs);
    assert!(
        !(reps[0].output.db.jobs.len() == reps[1].output.db.jobs.len()
            && reps[0].output.end == reps[1].output.end),
        "different seeds should differ somewhere"
    );
}
