//! Lifecycle-span integration tests: the offline analyzer reproduces
//! accounting aggregates from the trace alone, every completed job's spans
//! partition its lifecycle, and span emission never perturbs results.

use std::collections::BTreeMap;
use std::io::BufRead;
use std::path::PathBuf;
use teragrid_repro::prelude::*;
use tg_core::{RunOptions, ScenarioConfig, SimOutput};
use tg_des::analyze::parse_span_line;
use tg_des::{Span, SpanKind, TraceAnalyzer};
use tg_sched::SchedulerKind;

/// A unique scratch path for one test's trace file.
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tg-spans-{tag}-{}.jsonl", std::process::id()))
}

/// Run `cfg` once at `seed` with a JSONL trace, returning the output and
/// every span parsed back from the file.
fn run_traced(cfg: &ScenarioConfig, seed: u64, tag: &str) -> (SimOutput, Vec<Span>) {
    let path = scratch(tag);
    let opts = RunOptions {
        metrics: false,
        trace_path: Some(path.clone()),
        ..RunOptions::default()
    };
    let out = cfg.clone().build().run_with(seed, &opts);
    let health = out.trace_health.expect("trace requested");
    assert!(health.sink_clean(), "trace writes failed: {health:?}");
    let file = std::fs::File::open(&path).expect("trace file exists");
    let spans: Vec<Span> = std::io::BufReader::new(file)
        .lines()
        .filter_map(|l| parse_span_line(&l.expect("readable line")))
        .collect();
    let _ = std::fs::remove_file(&path);
    assert!(!spans.is_empty(), "trace produced no spans");
    (out, spans)
}

/// An F3-shaped scenario (one overloaded site, batch + interactive mix)
/// under the given scheduler, small enough for the test suite.
fn f3_shaped(kind: SchedulerKind) -> ScenarioConfig {
    tg_bench::single_site_config(
        "spans-f3",
        64,
        8,
        0,
        0,
        7,
        &[(Modality::BatchComputing, 40), (Modality::Interactive, 10)],
        kind,
    )
}

#[test]
fn analyzer_reproduces_per_scheduler_mean_wait_within_1pct() {
    for kind in [
        SchedulerKind::Fcfs,
        SchedulerKind::Easy,
        SchedulerKind::Conservative,
        SchedulerKind::WeeklyDrain,
        SchedulerKind::FairshareEasy,
    ] {
        let cfg = f3_shaped(kind);
        let path = scratch(&format!("xcheck-{}", kind.name()));
        let opts = RunOptions {
            metrics: false,
            trace_path: Some(path.clone()),
            ..RunOptions::default()
        };
        let out = cfg.build().run_with(4242, &opts);
        let file = std::fs::File::open(&path).expect("trace file exists");
        let mut analyzer = TraceAnalyzer::new();
        for line in std::io::BufReader::new(file).lines() {
            analyzer.add_line(&line.expect("readable line"));
        }
        let _ = std::fs::remove_file(&path);
        let analysis = analyzer.finish();
        let db_mean = out.mean_wait_secs();
        assert_eq!(
            analysis.jobs,
            out.db.jobs.len() as u64,
            "{}: analyzer job count",
            kind.name()
        );
        let rel = (analysis.mean_wait_s - db_mean).abs() / db_mean.max(1e-9);
        assert!(
            rel <= 0.01,
            "{}: analyzer mean wait {:.3}s vs accounting {:.3}s (rel {rel:.5})",
            kind.name(),
            analysis.mean_wait_s,
            db_mean
        );
    }
}

#[test]
fn spans_partition_each_completed_jobs_lifecycle() {
    // The stock baseline exercises every span kind: workflows (held),
    // data jobs (stage in/out), RC tasks (reconfig), and queueing.
    let cfg = ScenarioConfig::baseline(150, 7);
    let (out, spans) = run_traced(&cfg, 777, "partition");

    let mut by_job: BTreeMap<u64, Vec<Span>> = BTreeMap::new();
    for s in spans {
        by_job.entry(s.job).or_default().push(s);
    }
    let kinds_seen: std::collections::BTreeSet<SpanKind> =
        by_job.values().flatten().map(|s| s.kind).collect();
    for kind in [
        SpanKind::Held,
        SpanKind::StageIn,
        SpanKind::Queued,
        SpanKind::Run,
    ] {
        assert!(kinds_seen.contains(&kind), "no {kind} span in the baseline");
    }

    for rec in &out.db.jobs {
        let mut spans = by_job
            .remove(&(rec.job.index() as u64))
            .unwrap_or_else(|| panic!("{}: no spans", rec.job));
        spans.sort_by(|a, b| (a.t0, a.t1).partial_cmp(&(b.t0, b.t1)).unwrap());
        // Contiguous: each span starts exactly where the previous ended.
        for pair in spans.windows(2) {
            assert!(
                (pair[1].t0 - pair[0].t1).abs() < 1e-9,
                "{}: gap/overlap between {} and {}",
                rec.job,
                pair[0].kind,
                pair[1].kind
            );
        }
        // The run span is the recorded execution interval.
        let run = spans
            .iter()
            .find(|s| s.kind == SpanKind::Run)
            .unwrap_or_else(|| panic!("{}: no run span", rec.job));
        assert!(
            (run.t0 - rec.start.as_secs_f64()).abs() < 1e-9,
            "{}: run start",
            rec.job
        );
        assert!(
            (run.t1 - rec.end.as_secs_f64()).abs() < 1e-9,
            "{}: run end",
            rec.job
        );
        // Wait-attributed spans sum exactly to the recorded queue wait.
        let wait_sum: f64 = spans
            .iter()
            .filter(|s| s.kind.is_wait())
            .map(|s| s.duration())
            .sum();
        let rec_wait = rec.wait().as_secs_f64();
        assert!(
            (wait_sum - rec_wait).abs() < 1e-6,
            "{}: wait spans sum {wait_sum:.6} vs recorded wait {rec_wait:.6}",
            rec.job
        );
        // Nothing before the first span or after stage-out: the chain starts
        // at (or before) the recorded submission and covers through the end.
        assert!(
            spans[0].t0 <= rec.submit.as_secs_f64() + 1e-9,
            "{}: first span starts after submission",
            rec.job
        );
        let last = spans.last().unwrap();
        assert!(
            last.t1 >= rec.end.as_secs_f64() - 1e-9,
            "{}: spans end before the job does",
            rec.job
        );
    }
    assert!(
        by_job.is_empty(),
        "spans for jobs that never completed: {:?}",
        by_job.keys().collect::<Vec<_>>()
    );
}

#[test]
fn span_emission_never_perturbs_results() {
    let cfg = ScenarioConfig::baseline(120, 7);
    let plain = cfg.clone().build().run(31);
    let (traced, _) = run_traced(&cfg, 31, "determinism");
    // Byte-identical deterministic outputs, spans on or off.
    assert_eq!(
        format!("{:?}", plain.db),
        format!("{:?}", traced.db),
        "accounting database diverged under span emission"
    );
    assert_eq!(plain.end, traced.end);
    assert_eq!(plain.events_delivered, traced.events_delivered);
    assert_eq!(plain.site_stats, traced.site_stats);
    // HashMap iteration order is instance-dependent; compare sorted.
    let sorted = |m: &std::collections::HashMap<JobId, Modality>| {
        m.iter()
            .map(|(k, v)| (*k, *v))
            .collect::<BTreeMap<JobId, Modality>>()
    };
    assert_eq!(
        sorted(&plain.truth),
        sorted(&traced.truth),
        "ground truth diverged"
    );
}
