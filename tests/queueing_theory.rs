//! Validation against closed-form queueing theory.
//!
//! The whole simulator stack (engine → cluster → scheduler → records) is
//! driven as an M/M/c queue — Poisson arrivals, exponential service,
//! single-core jobs, FCFS — and the measured mean wait is checked against
//! the Erlang-C formula. This is the strongest correctness evidence a DES
//! can offer: if event ordering, resource accounting, or record timing were
//! wrong anywhere in the pipeline, these numbers would not land.

use teragrid_repro::prelude::*;
use tg_core::sim::{Event, GridSim};
use tg_des::dist::{Dist, Exponential};
use tg_des::{Engine, SimRng, StreamId};
use tg_model::{ConfigLibrary, Federation};
use tg_sched::BatchScheduler;
use tg_workload::{JobId, ProjectId, UserId};

/// Erlang-C probability that an arrival waits, for `c` servers at offered
/// load `a = λ/μ` Erlangs.
fn erlang_c(c: usize, a: f64) -> f64 {
    // Compute a^c/c! · (c/(c-a)) against the partial sum, in a numerically
    // stable incremental form.
    let mut term = 1.0; // a^k / k! running term, k = 0
    let mut sum = 1.0;
    for k in 1..=c {
        term *= a / k as f64;
        if k < c {
            sum += term;
        }
    }
    let tail = term * c as f64 / (c as f64 - a);
    tail / (sum + tail)
}

/// Theoretical M/M/c mean wait in queue.
fn mmc_mean_wait(c: usize, lambda: f64, mu: f64) -> f64 {
    let a = lambda / mu;
    assert!(a < c as f64, "unstable queue");
    erlang_c(c, a) / (c as f64 * mu - lambda)
}

/// Drive the full pipeline as an M/M/c queue and return the measured mean
/// wait (seconds) over `n_jobs` jobs.
fn simulate_mmc(c: usize, lambda: f64, mu: f64, n_jobs: usize, seed: u64) -> f64 {
    // One site, one "node" holding exactly c cores.
    let site = SiteConfig {
        batch_nodes: 1,
        cores_per_node: c,
        charge_factor: 1.0,
        core_speed: 1.0,
        ..SiteConfig::medium("mmc")
    };
    let federation = Federation::builder()
        .site(site)
        .library(ConfigLibrary::new())
        .build();
    let schedulers: Vec<Box<dyn BatchScheduler>> = vec![SchedulerKind::Fcfs.build(c)];

    // Build the arrival/service streams by hand.
    let factory = RngFactory::new(seed);
    let mut arr_rng: SimRng = factory.stream(StreamId::global("mmc-arrivals"));
    let mut svc_rng: SimRng = factory.stream(StreamId::global("mmc-service"));
    let inter = Exponential::new(lambda);
    let service = Exponential::new(mu);
    let mut jobs = Vec::with_capacity(n_jobs);
    let mut t = SimTime::ZERO;
    for i in 0..n_jobs {
        t += SimDuration::from_secs_f64(inter.sample(&mut arr_rng));
        let runtime = SimDuration::from_secs_f64(service.sample(&mut svc_rng).max(1e-6));
        jobs.push(
            Job::batch(JobId(i), UserId(0), ProjectId(0), t, 1, runtime)
                .with_site(tg_model::SiteId(0)),
        );
    }

    let sim = GridSim::new(
        federation,
        schedulers,
        MetaPolicy::ShortestEta,
        RcPolicy::AWARE,
        tg_model::SiteId(0),
        jobs,
        factory,
    );
    let mut engine: Engine<Event> = Engine::with_capacity(n_jobs);
    let finished = sim.run(&mut engine);

    // Discard a warm-up prefix so the empty-system start doesn't bias the
    // steady-state estimate.
    let warmup = n_jobs / 10;
    let waits: Vec<f64> = finished
        .db
        .jobs
        .iter()
        .filter(|r| r.job.index() >= warmup)
        .map(|r| r.wait().as_secs_f64())
        .collect();
    waits.iter().sum::<f64>() / waits.len() as f64
}

#[test]
fn mm1_mean_wait_matches_theory() {
    // M/M/1 at ρ = 0.6: Wq = ρ/(μ−λ).
    let (lambda, mu) = (0.006, 0.01); // per second; mean service 100 s
    let theory = mmc_mean_wait(1, lambda, mu);
    let measured: f64 = (0..3)
        .map(|s| simulate_mmc(1, lambda, mu, 40_000, 100 + s))
        .sum::<f64>()
        / 3.0;
    let rel = (measured - theory).abs() / theory;
    assert!(
        rel < 0.08,
        "M/M/1 wait: measured {measured:.1}s vs Erlang-C {theory:.1}s ({rel:.2} rel err)"
    );
}

#[test]
fn mmc_mean_wait_matches_theory() {
    // M/M/8 at ρ = 0.8.
    let c = 8;
    let mu = 0.01; // mean service 100 s
    let lambda = 0.8 * c as f64 * mu;
    let theory = mmc_mean_wait(c, lambda, mu);
    let measured: f64 = (0..3)
        .map(|s| simulate_mmc(c, lambda, mu, 60_000, 200 + s))
        .sum::<f64>()
        / 3.0;
    let rel = (measured - theory).abs() / theory;
    assert!(
        rel < 0.10,
        "M/M/8 wait: measured {measured:.1}s vs Erlang-C {theory:.1}s"
    );
}

#[test]
fn light_load_has_negligible_waits() {
    // M/M/16 at ρ = 0.2: waits should be near zero.
    let c = 16;
    let mu = 0.01;
    let lambda = 0.2 * c as f64 * mu;
    let measured = simulate_mmc(c, lambda, mu, 20_000, 300);
    let theory = mmc_mean_wait(c, lambda, mu);
    assert!(measured < 1.0, "measured {measured}s at 20% load");
    assert!(theory < 1.0);
}

#[test]
fn erlang_c_sanity() {
    // Known value: c=1 reduces to ρ.
    assert!((erlang_c(1, 0.5) - 0.5).abs() < 1e-12);
    // Monotone in load.
    assert!(erlang_c(4, 3.0) > erlang_c(4, 2.0));
    // Heavily overprovisioned → waits vanish.
    assert!(erlang_c(100, 10.0) < 1e-6);
}
