//! `tgsim` — run a simulation scenario from a JSON config file.
//!
//! ```text
//! tgsim emit-baseline [USERS DAYS] > scenario.json   # write a starter config
//! tgsim run scenario.json [--seed N] [--reps K] [--sample-hours H]
//!       [--classify] [--out results.json] [--faults spec.json]
//!       [--metrics-out metrics.json] [--trace-out trace.jsonl]
//!       [--stream-out records.jsonl] [--assert-peak-rss-mb N]
//! tgsim analyze trace.jsonl [--json]
//! tgsim replay trace.swf [--scenario cfg.json] [--seed N]
//!       [--faults spec.json] [--classify]
//! ```
//!
//! `run` prints the usage report (ground-truth labels) and, with
//! `--classify`, the classifier accuracy in both instrumentation modes;
//! `--out` writes a JSON summary. `--metrics-out` writes the first
//! replication's run-level metrics snapshot (per-site busy/queue gauges and
//! sampled series, per-modality completion counters, engine profile) as
//! JSON; it implies sampling at 6-hour cadence unless `--sample-hours`
//! overrides it. `--trace-out` streams a structured JSONL event trace from
//! the first replication. `--faults` loads a [`FaultSpec`] JSON file and
//! overrides the config's `faults` section (node crashes, site outages, WAN
//! degradation, lossy accounting ingest); the run summary then includes the
//! fault report. `--stream-out` switches to the O(in-flight) memory-diet
//! path: the workload is generated lazily (jobs pulled as simulated time
//! advances) and accounting records stream to the given JSONL file instead
//! of accumulating in memory — outputs are byte-identical to the default
//! path at the same seed, but the usage report is replaced by a compact
//! ingest tally (and `--classify` is unavailable: classification needs the
//! retained records). `--assert-peak-rss-mb` fails the run (exit 1) if the
//! process peak RSS exceeded the budget — the CI memory-regression guard.
//! `--live-stats` collects constant-memory online observability during the
//! run — span-latency quantile sketches keyed by (kind, cause, site,
//! modality) plus an hourly windowed series of submit/start/complete rates,
//! active jobs, utilization, and queue depth — reported at the end and
//! included as a `stats` object in the `--out` summary; it works sharded
//! (per-shard sketches merge exactly, so the report is byte-identical at
//! any `--threads`). `--live-stats=FILE` additionally streams each closed
//! series bucket as a JSONL row while the run progresses (serial-only, like
//! `--trace-out`). `--threads 0` auto-detects the available cores
//! (`std::thread::available_parallelism`); the resolved count lands in the
//! `--out` summary's `threads` field alongside a deterministic `sync`
//! section of sharded-protocol counters — the same value the human `sync:`
//! line renders from. `--quiet` suppresses that line (it mixes in
//! run-to-run wall-clock noise). `analyze` reconstructs per-job lifecycle spans from such a
//! trace offline and prints wait-time breakdowns by span kind, wait cause,
//! site, and modality (p50/p95/p99) — including the `fault`/`requeue` spans
//! a faulted run emits. `replay` drives the simulator from a Standard
//! Workload Format archive trace instead of the generator: the federation,
//! policies, and (with `--faults`) fault schedule come from the scenario
//! config, the jobs from the trace — so archive workloads get the same
//! degraded-operation machinery as synthetic ones.

use std::process::ExitCode;
use teragrid_repro::prelude::*;
use tg_des::memory::CountingAlloc;
use tg_des::stats::ci_student_t;
use tg_des::{TraceAnalyzer, TraceHealth};

/// Exact heap accounting for `--assert-peak-rss-mb`: the counting allocator
/// gives a live-bytes high-water alongside the kernel's `VmHWM`, so the
/// memory guard has one signal immune to RSS noise (page-cache, arenas).
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  tgsim emit-baseline [USERS DAYS]\n  tgsim run <scenario.json> \
         [--seed N] [--reps K] [--threads N|0=auto] [--sample-hours H] [--classify] \
         [--out FILE] [--faults FILE] [--metrics-out FILE] [--trace-out FILE] \
         [--stream-out FILE] [--assert-peak-rss-mb N] [--live-stats[=FILE]] [--quiet]\n  \
         tgsim analyze <trace.jsonl> [--json] [--data]\n  \
         tgsim replay <trace.swf> [--scenario FILE] [--seed N] \
         [--faults FILE] [--classify]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("emit-baseline") => emit_baseline(&args[1..]),
        Some("run") => run(&args[1..]),
        Some("analyze") => analyze(&args[1..]),
        Some("replay") => replay(&args[1..]),
        _ => usage(),
    }
}

fn emit_baseline(rest: &[String]) -> ExitCode {
    let users = rest
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300usize);
    let days = rest.get(1).and_then(|s| s.parse().ok()).unwrap_or(14u64);
    let cfg = ScenarioConfig::baseline(users, days);
    match serde_json::to_string_pretty(&cfg) {
        Ok(json) => {
            println!("{json}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tgsim: cannot serialize baseline: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `tgsim run` flag combinations that interact; one place holds every
/// rejection rule so the CLI and its tests cannot drift apart.
struct RunFlags {
    /// `--stream-out FILE` was given.
    stream_out: bool,
    /// `--classify` was given.
    classify: bool,
    /// `--reps K`.
    reps: usize,
    /// `--live-stats=FILE` (the streaming form; bare `--live-stats` never
    /// conflicts with anything).
    live_stats_file: bool,
}

/// Why this flag combination is rejected, or `None` if it is fine. Checked
/// before any file is touched so a bad invocation costs nothing.
/// Resolve the `--threads` flag: `0` means "one worker per available core"
/// (the governor keeps over-subscription safe — a 1-core host folds back to
/// the serial path mid-run). `detected` is
/// [`std::thread::available_parallelism`], `None` when the platform cannot
/// tell, in which case auto degrades to the serial path.
fn resolve_threads(raw: usize, detected: Option<usize>) -> usize {
    if raw == 0 {
        detected.unwrap_or(1)
    } else {
        raw
    }
}

/// The deterministic slice of a sharded run's sync profile: pure protocol
/// counters, functions of `(config, seed, threads)` alone. Both the human
/// `sync:` line and the `--out` summary render from this one value so the
/// two can never drift. Wall-clock figures (round/interlude sketches, recv
/// spin/block tallies) are deliberately excluded: they vary run to run.
fn sync_summary_json(sync: &SyncProfile) -> serde_json::Value {
    serde_json::json!({
        "shards": sync.shards,
        "rounds": sync.rounds,
        "coord_events": sync.coord_events,
        "candidate_rounds": sync.candidate_rounds,
        "grant_rounds": sync.grant_rounds,
        "advances_sent": sync.advances_sent,
        "parks_received": sync.parks_received,
        "interlude_messages": sync.interlude_messages,
        "bound_clamps": sync.bound_clamps,
        "batched_candidates": sync.batched_candidates,
        "governor": {
            "fired": sync.governor_fired,
            "at_events": sync.governor_at_events,
            "serial_tail_events": sync.serial_tail_events,
        },
    })
}

/// Render the `sync:` line. The protocol counters come from the same
/// [`sync_summary_json`] value the `--out` summary embeds (one formatting
/// path); only the wall-clock tail reads the profile directly.
fn format_sync_line(det: &serde_json::Value, sync: &SyncProfile) -> String {
    let governor = if det["governor"]["fired"].as_bool() == Some(true) {
        format!(
            "folded@{} ({} serial tail)",
            det["governor"]["at_events"], det["governor"]["serial_tail_events"]
        )
    } else {
        "idle".to_string()
    };
    format!(
        "sync: {} shards, {} rounds ({} coord, {} candidate, {} grant), \
         {} advances / {} parks / {} clamps / {} batched, governor {governor}, \
         round p50 {:.1}µs p99 {:.1}µs, interlude p50 {:.1}µs, \
         occupancy mean {:.2}, recv spin/block coord {}/{} shard {}/{}",
        det["shards"],
        det["rounds"],
        det["coord_events"],
        det["candidate_rounds"],
        det["grant_rounds"],
        det["advances_sent"],
        det["parks_received"],
        det["bound_clamps"],
        det["batched_candidates"],
        sync.round_wall.p50 * 1e6,
        sync.round_wall.p99 * 1e6,
        sync.candidate_wall.p50 * 1e6,
        sync.grant_occupancy.mean,
        sync.recv_spins,
        sync.recv_blocks,
        sync.shard_recv_spins,
        sync.shard_recv_blocks,
    )
}

fn run_flag_conflict(f: &RunFlags) -> Option<&'static str> {
    if f.stream_out && f.classify {
        return Some(
            "--stream-out and --classify are incompatible \
             (classification needs the retained record database)",
        );
    }
    if f.stream_out && f.reps > 1 {
        return Some(
            "--stream-out supports a single replication \
             (every rep would clobber the same file); use --reps 1",
        );
    }
    if f.live_stats_file && f.reps > 1 {
        return Some(
            "--live-stats=FILE supports a single replication \
             (every rep would clobber the same file); use --reps 1 or bare --live-stats",
        );
    }
    None
}

fn run(rest: &[String]) -> ExitCode {
    let Some(path) = rest.first() else {
        return usage();
    };
    let mut seed = 42u64;
    let mut reps = 1usize;
    let mut threads = 1usize;
    let mut classify = false;
    let mut out_path: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut faults_path: Option<String> = None;
    let mut sample_hours: Option<u64> = None;
    let mut stream_out: Option<String> = None;
    let mut rss_budget_mb: Option<u64> = None;
    let mut live_stats = false;
    let mut live_stats_file: Option<String> = None;
    let mut quiet = false;
    let mut i = 1;
    while i < rest.len() {
        match rest[i].as_str() {
            "--seed"
            | "--reps"
            | "--threads"
            | "--out"
            | "--sample-hours"
            | "--metrics-out"
            | "--trace-out"
            | "--faults"
            | "--stream-out"
            | "--assert-peak-rss-mb" => {
                let flag = rest[i].clone();
                i += 1;
                let Some(value) = rest.get(i) else {
                    eprintln!("tgsim: {flag} needs a value");
                    return usage();
                };
                match flag.as_str() {
                    "--seed" => match value.parse() {
                        Ok(v) => seed = v,
                        Err(e) => {
                            eprintln!("tgsim: bad --seed: {e}");
                            return usage();
                        }
                    },
                    "--reps" => match value.parse() {
                        Ok(v) if v >= 1 => reps = v,
                        _ => {
                            eprintln!("tgsim: bad --reps");
                            return usage();
                        }
                    },
                    // `0` = auto-detect cores, resolved below.
                    "--threads" => match value.parse() {
                        Ok(v) => threads = v,
                        Err(_) => {
                            eprintln!("tgsim: bad --threads");
                            return usage();
                        }
                    },
                    "--sample-hours" => match value.parse() {
                        Ok(v) if v >= 1 => sample_hours = Some(v),
                        _ => {
                            eprintln!("tgsim: bad --sample-hours");
                            return usage();
                        }
                    },
                    "--metrics-out" => metrics_out = Some(value.clone()),
                    "--trace-out" => trace_out = Some(value.clone()),
                    "--faults" => faults_path = Some(value.clone()),
                    "--stream-out" => stream_out = Some(value.clone()),
                    "--assert-peak-rss-mb" => match value.parse() {
                        Ok(v) if v >= 1 => rss_budget_mb = Some(v),
                        _ => {
                            eprintln!("tgsim: bad --assert-peak-rss-mb");
                            return usage();
                        }
                    },
                    _ => out_path = Some(value.clone()),
                }
            }
            "--classify" => classify = true,
            "--quiet" => quiet = true,
            "--live-stats" => live_stats = true,
            s if s.starts_with("--live-stats=") => {
                let value = &s["--live-stats=".len()..];
                if value.is_empty() {
                    eprintln!("tgsim: --live-stats= needs a file");
                    return usage();
                }
                live_stats_file = Some(value.to_string());
            }
            other => {
                eprintln!("tgsim: unknown flag {other}");
                return usage();
            }
        }
        i += 1;
    }

    if let Some(msg) = run_flag_conflict(&RunFlags {
        stream_out: stream_out.is_some(),
        classify,
        reps,
        live_stats_file: live_stats_file.is_some(),
    }) {
        eprintln!("tgsim: {msg}");
        return ExitCode::from(2);
    }

    // Fail fast on unwritable output paths instead of discovering them only
    // after the replications have run (the trace sink would otherwise panic
    // mid-setup). Append mode probes writability without truncating.
    for p in [
        &out_path,
        &metrics_out,
        &trace_out,
        &stream_out,
        &live_stats_file,
    ]
    .into_iter()
    .flatten()
    {
        if let Err(e) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(p)
        {
            eprintln!("tgsim: cannot write {p}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tgsim: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut cfg: ScenarioConfig = match serde_json::from_str(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("tgsim: invalid scenario config: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(fp) = &faults_path {
        let text = match std::fs::read_to_string(fp) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("tgsim: cannot read {fp}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match serde_json::from_str::<FaultSpec>(&text) {
            Ok(spec) => cfg.faults = Some(spec),
            Err(e) => {
                eprintln!("tgsim: invalid fault spec {fp}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(h) = sample_hours {
        cfg.sample_interval = Some(SimDuration::from_hours(h));
    } else if metrics_out.is_some() && cfg.sample_interval.is_none() {
        // Metrics without a sampler would leave the time series empty;
        // default to a 6-hour cadence.
        cfg.sample_interval = Some(SimDuration::from_hours(6));
    }
    let threads_requested = threads;
    let threads = resolve_threads(
        threads,
        std::thread::available_parallelism().ok().map(|n| n.get()),
    );
    let scenario = cfg.build();
    eprintln!(
        "running `{}` × {reps} replication(s) from seed {seed} on {threads} thread(s){} ...",
        scenario.config().name,
        if threads_requested == 0 {
            " (auto)"
        } else {
            ""
        },
    );
    let opts = RunOptions {
        metrics: metrics_out.is_some(),
        trace_path: trace_out.as_ref().map(std::path::PathBuf::from),
        threads,
        stream_gen: stream_out.is_some(),
        record_streaming: match &stream_out {
            Some(p) => RecordStreaming::Jsonl(std::path::PathBuf::from(p)),
            None => RecordStreaming::Retain,
        },
        live_stats,
        live_stats_path: live_stats_file.as_ref().map(std::path::PathBuf::from),
        ..RunOptions::default()
    };
    let replications = replicate_with(&scenario, seed, reps, 0, &opts);
    let first = &replications[0].output;

    let report: Option<UsageReport> = if let Some(tally) = &first.ingest_tally {
        // Streamed run: the records left the process as they were emitted;
        // report the compact tally in place of the full usage report.
        println!(
            "streamed {} records ({} jobs, {} transfers, {} sessions, \
             {} gateway attrs, {} rc placements) to {}",
            tally.len(),
            tally.jobs,
            tally.transfers,
            tally.sessions,
            tally.gateway_attrs,
            tally.rc_placements,
            stream_out.as_deref().unwrap_or("?"),
        );
        println!(
            "usage: {:.0} core-hours charged, {:.0} MB transferred",
            tally.core_hours, tally.transfer_mb
        );
        if tally.write_errors > 0 {
            eprintln!(
                "tgsim: warning: {} record writes failed; the stream file is incomplete",
                tally.write_errors
            );
        }
        None
    } else {
        let report = UsageReport::compute(&first.db, &first.truth, &first.charge_policy);
        println!("{report}");
        Some(report)
    };

    let utils: Vec<f64> = replications
        .iter()
        .map(|r| r.output.average_utilization())
        .collect();
    let (u_mean, u_ci) = ci_student_t(&utils);
    let jobs_recorded = first
        .ingest_tally
        .map_or(first.db.jobs.len() as u64, |t| t.jobs);
    println!(
        "federation utilization {u_mean:.3} ± {u_ci:.3} over {} replication(s); \
         {} jobs, {} events (first replication)",
        reps, jobs_recorded, first.events_delivered
    );
    let agg = aggregate_profiles(&replications);
    println!(
        "engine: {} events in {:.3}s wall ({:.0} events/s), peak queue {}",
        agg.events_delivered, agg.wall_seconds, agg.events_per_sec, agg.peak_queue_len
    );
    // Sync-round profile of the sharded engine (first replication). The
    // deterministic counters render from the same `sync_summary_json` value
    // the --out summary embeds; the line itself mixes in wall-clock noise,
    // so `--quiet` suppresses it (CI greps stable lines elsewhere).
    let sync_det = first.profile.sync.as_ref().map(sync_summary_json);
    if !quiet {
        if let (Some(det), Some(sync)) = (&sync_det, &first.profile.sync) {
            println!("{}", format_sync_line(det, sync));
        }
    }
    if let Some(stats) = &first.stats {
        let d = stats.series.digest();
        println!(
            "live stats: {} spans across {} groups; {} series buckets of {:.0}s \
             (peak active {}, peak queue {:.0}, mean utilization {:.3})",
            stats.spans.spans,
            stats.spans.groups,
            d.buckets,
            d.bucket_secs,
            d.peak_active,
            d.peak_queue_depth,
            d.mean_utilization,
        );
        if let Some(q) = stats.spans.by_kind.get("queued") {
            println!(
                "  queued: n {} mean {:.1}s p50 {:.1}s p95 {:.1}s p99 {:.1}s",
                q.count, q.mean, q.p50, q.p95, q.p99
            );
        }
        if stats.live_sink_errors > 0 {
            eprintln!(
                "tgsim: warning: {} live-stats writes failed; {} is missing rows",
                stats.live_sink_errors,
                live_stats_file.as_deref().unwrap_or("?"),
            );
        } else if let Some(f) = &live_stats_file {
            eprintln!("wrote {f}");
        }
    }
    if let Some(dr) = &first.data_report {
        println!(
            "data grid: {} datasets, {} accesses ({} hits / {} misses, hit rate {:.3}), \
             {:.0} MB fetched over WAN, {} evictions",
            dr.datasets, dr.accesses, dr.hits, dr.misses, dr.hit_rate, dr.wan_mb, dr.evictions
        );
    }
    if let Some(fr) = &first.fault_report {
        println!(
            "faults: {} crashes, {} outages ({:.1} h downtime), \
             {} killed / {} requeued / {} abandoned / {} checkpointed, \
             ingest -{} / +{} records",
            fr.node_crashes,
            fr.site_outages,
            fr.total_downtime_s() / 3600.0,
            fr.jobs_killed,
            fr.jobs_requeued,
            fr.jobs_abandoned,
            fr.checkpoint_restarts,
            fr.records_lost,
            fr.records_duplicated
        );
    }

    if let Some(out) = &metrics_out {
        let snap = first.metrics.as_ref().expect("metrics were requested");
        println!("{}", MetricsReport(snap));
        match serde_json::to_string_pretty(snap) {
            Ok(json) => match std::fs::write(out, json) {
                Ok(()) => eprintln!("wrote {out}"),
                Err(e) => {
                    eprintln!("tgsim: cannot write {out}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("tgsim: cannot serialize metrics: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let trace_health: Option<TraceHealth> = first.trace_health;
    if let Some(out) = &trace_out {
        let health = trace_health.expect("trace was requested");
        if health.dropped > 0 {
            eprintln!(
                "tgsim: note: ring buffer evicted {} entries ({out} still has all of them)",
                health.dropped
            );
        }
        if health.sink_errors > 0 {
            eprintln!(
                "tgsim: warning: {} trace writes failed; {out} is missing lines",
                health.sink_errors
            );
        }
        if !health.flush_ok {
            eprintln!("tgsim: warning: final flush of {out} failed; its tail may be truncated");
        }
        if health.sink_clean() {
            eprintln!("wrote {out}");
        }
    }

    let mut accuracy_summary = Vec::new();
    if classify {
        for mode in [ClassifierMode::WithAttributes, ClassifierMode::RecordsOnly] {
            let inferred = classify_all(&first.db, mode);
            let acc = Accuracy::score(&first.truth, &inferred);
            println!(
                "classifier [{}]: accuracy {:.3}, macro-F1 {:.3}",
                mode.name(),
                acc.accuracy,
                acc.macro_f1
            );
            accuracy_summary.push((mode.name().to_string(), acc.accuracy, acc.macro_f1));
        }
    }

    if let Some(out) = out_path {
        // `trace` notes sink health so a summary shipped with a truncated
        // trace file is self-describing (null when --trace-out was not set).
        let trace_json = match trace_health {
            Some(h) => serde_json::json!({
                "dropped": h.dropped,
                "sink_errors": h.sink_errors,
                "flush_ok": h.flush_ok,
                "complete": h.sink_clean(),
            }),
            None => serde_json::Value::Null,
        };
        let summary = serde_json::json!({
            "scenario": first.scenario,
            "seed": seed,
            "replications": reps,
            // Resolved thread count (`--threads 0` auto-detect lands here).
            "threads": threads,
            // Deterministic sync-protocol counters; same value the `sync:`
            // line renders from. Null on serial runs.
            "sync": sync_det.clone().unwrap_or(serde_json::Value::Null),
            "jobs": jobs_recorded,
            "events": first.events_delivered,
            "utilization": { "mean": u_mean, "ci95": u_ci },
            "shares": report.as_ref().map(|r| serde_json::to_value(&r.shares))
                .unwrap_or(serde_json::Value::Null),
            "ingest_tally": first.ingest_tally.as_ref().map(serde_json::to_value)
                .unwrap_or(serde_json::Value::Null),
            "classifier": accuracy_summary
                .iter()
                .map(|(m, a, f)| serde_json::json!({"mode": m, "accuracy": a, "macro_f1": f}))
                .collect::<Vec<_>>(),
            "samples": first.samples,
            "stats": first.stats.as_ref().map(serde_json::to_value)
                .unwrap_or(serde_json::Value::Null),
            "trace": trace_json,
            "data": first.data_report.as_ref().map(serde_json::to_value)
                .unwrap_or(serde_json::Value::Null),
            "faults": first
                .fault_report
                .as_ref()
                .map(serde_json::to_value)
                .unwrap_or(serde_json::Value::Null),
        });
        match std::fs::write(
            &out,
            serde_json::to_string_pretty(&summary).expect("serializable"),
        ) {
            Ok(()) => eprintln!("wrote {out}"),
            Err(e) => {
                eprintln!("tgsim: cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(budget_mb) = rss_budget_mb {
        let budget = budget_mb * (1 << 20);
        let heap_peak = tg_des::memory::peak_in_use_bytes().max(0) as u64;
        let rss_peak = replications
            .iter()
            .filter_map(|r| r.output.profile.peak_rss_bytes)
            .max();
        let mib = |b: u64| b as f64 / (1 << 20) as f64;
        match rss_peak {
            Some(rss) => {
                println!(
                    "memory: peak RSS {:.1} MiB, peak live heap {:.1} MiB (budget {budget_mb} MiB)",
                    mib(rss),
                    mib(heap_peak)
                );
                if rss > budget || heap_peak > budget {
                    eprintln!(
                        "tgsim: peak memory (RSS {:.1} MiB / heap {:.1} MiB) exceeds the \
                         --assert-peak-rss-mb budget of {budget_mb} MiB",
                        mib(rss),
                        mib(heap_peak)
                    );
                    return ExitCode::FAILURE;
                }
            }
            None => {
                // No /proc on this platform: enforce on the heap signal only.
                println!(
                    "memory: peak live heap {:.1} MiB (budget {budget_mb} MiB; RSS unavailable)",
                    mib(heap_peak)
                );
                if heap_peak > budget {
                    eprintln!(
                        "tgsim: peak live heap {:.1} MiB exceeds the --assert-peak-rss-mb \
                         budget of {budget_mb} MiB",
                        mib(heap_peak)
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    // An incomplete trace is a failed run: downstream `tgsim analyze` would
    // silently compute statistics over a truncated event stream.
    if matches!(trace_health, Some(h) if !h.sink_clean()) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn analyze(rest: &[String]) -> ExitCode {
    let Some(path) = rest.first() else {
        return usage();
    };
    let mut as_json = false;
    let mut data_summary = false;
    for flag in &rest[1..] {
        match flag.as_str() {
            "--json" => as_json = true,
            "--data" => data_summary = true,
            other => {
                eprintln!("tgsim: unknown flag {other}");
                return usage();
            }
        }
    }
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("tgsim: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut analyzer = TraceAnalyzer::new();
    use std::io::BufRead;
    for line in std::io::BufReader::new(file).lines() {
        match line {
            Ok(l) => analyzer.add_line(&l),
            Err(e) => {
                eprintln!("tgsim: read error in {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let analysis = analyzer.finish();
    if analysis.span_lines == 0 {
        eprintln!(
            "tgsim: {path} contains no span entries ({} lines, {} skipped); \
             was it written by `tgsim run --trace-out`?",
            analysis.lines, analysis.skipped
        );
        return ExitCode::FAILURE;
    }
    if as_json {
        match serde_json::to_string_pretty(&analysis) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("tgsim: cannot serialize analysis: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }
    println!(
        "{}: {} lines, {} spans, {} skipped; {} completed jobs, mean wait {:.1}s",
        path,
        analysis.lines,
        analysis.span_lines,
        analysis.skipped,
        analysis.jobs,
        analysis.mean_wait_s
    );
    let table = |title: &str, rows: &[(String, tg_des::GroupStats)]| {
        if rows.is_empty() {
            return;
        }
        println!("\n{title}");
        println!(
            "  {:<24} {:>8} {:>12} {:>12} {:>12} {:>12}",
            "group", "count", "mean_s", "p50_s", "p95_s", "p99_s"
        );
        for (name, g) in rows {
            println!(
                "  {:<24} {:>8} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
                name, g.count, g.mean, g.p50, g.p95, g.p99
            );
        }
    };
    let rows = |m: &std::collections::BTreeMap<String, tg_des::GroupStats>| {
        m.iter().map(|(k, v)| (k.clone(), *v)).collect::<Vec<_>>()
    };
    table("span durations by kind", &rows(&analysis.by_kind));
    table(
        "stage-in time by cache outcome",
        &rows(&analysis.stage_in_by_cause),
    );
    if data_summary {
        let count = |cause: &str| analysis.stage_in_by_cause.get(cause).map_or(0, |g| g.count);
        let (hits, misses) = (count("cache-hit"), count("cache-miss"));
        let total = hits + misses;
        if total == 0 {
            println!("\ndata: no dataset stage-ins in this trace (no data grid configured?)");
        } else {
            println!(
                "\ndata: {total} dataset stage-ins, {hits} cache hits / {misses} misses \
                 (hit rate {:.3}), mean miss fetch {:.1}s",
                hits as f64 / total as f64,
                analysis
                    .stage_in_by_cause
                    .get("cache-miss")
                    .map_or(0.0, |g| g.mean),
            );
        }
    }
    table(
        "queued time by wait cause",
        &rows(&analysis.queued_by_cause),
    );
    table(
        "queued time by site",
        &analysis
            .queued_by_site
            .iter()
            .map(|(k, v)| (format!("site{k}"), *v))
            .collect::<Vec<_>>(),
    );
    table(
        "total wait by modality (completed jobs)",
        &rows(&analysis.wait_by_modality),
    );
    ExitCode::SUCCESS
}

fn replay(rest: &[String]) -> ExitCode {
    use tg_core::sim::{Event, GridSim};
    use tg_des::Engine;
    use tg_sched::BatchScheduler;
    use tg_workload::swf;

    let Some(path) = rest.first() else {
        return usage();
    };
    let mut seed = 42u64;
    let mut scenario_path: Option<String> = None;
    let mut faults_path: Option<String> = None;
    let mut classify = false;
    let mut i = 1;
    while i < rest.len() {
        match rest[i].as_str() {
            "--seed" | "--scenario" | "--faults" => {
                let flag = rest[i].clone();
                i += 1;
                let Some(value) = rest.get(i) else {
                    eprintln!("tgsim: {flag} needs a value");
                    return usage();
                };
                match flag.as_str() {
                    "--seed" => match value.parse() {
                        Ok(v) => seed = v,
                        Err(e) => {
                            eprintln!("tgsim: bad --seed: {e}");
                            return usage();
                        }
                    },
                    "--scenario" => scenario_path = Some(value.clone()),
                    _ => faults_path = Some(value.clone()),
                }
            }
            "--classify" => classify = true,
            other => {
                eprintln!("tgsim: unknown flag {other}");
                return usage();
            }
        }
        i += 1;
    }

    let swf_text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tgsim: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let imported = match swf::from_swf(&swf_text) {
        Ok(jobs) => jobs,
        Err(e) => {
            eprintln!("tgsim: invalid SWF trace {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if imported.is_empty() {
        eprintln!("tgsim: {path} contains no jobs");
        return ExitCode::FAILURE;
    }

    // The federation, policies, and fault schedule come from a scenario
    // config; only the workload section is ignored (the trace replaces it).
    let mut cfg = match &scenario_path {
        Some(p) => {
            let text = match std::fs::read_to_string(p) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("tgsim: cannot read {p}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match serde_json::from_str::<ScenarioConfig>(&text) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("tgsim: invalid scenario config {p}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => ScenarioConfig::baseline(300, 14),
    };
    if let Some(fp) = &faults_path {
        let text = match std::fs::read_to_string(fp) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("tgsim: cannot read {fp}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match serde_json::from_str::<FaultSpec>(&text) {
            Ok(spec) => cfg.faults = Some(spec),
            Err(e) => {
                eprintln!("tgsim: invalid fault spec {fp}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if cfg.data_home >= cfg.sites.len() {
        eprintln!("tgsim: scenario data_home out of range");
        return ExitCode::FAILURE;
    }

    let factory = RngFactory::new(seed);
    let library = cfg
        .library
        .clone()
        .unwrap_or_else(|| ConfigLibrary::synthetic(cfg.workload.rc_config_count.max(1)));
    let mut builder = Federation::builder().library(library);
    for s in &cfg.sites {
        builder = builder.site(s.clone());
    }
    let federation = builder.repository_at(cfg.data_home).build();
    // Archive traces come from bigger iron than this federation may model:
    // clamp like the generator path does — a pinned job must fit its site
    // (drop hints pointing past this federation), an unpinned one the
    // largest site.
    let max_cores = federation
        .sites()
        .map(|s| s.cluster.total_cores())
        .max()
        .expect("non-empty federation");
    let site_count = cfg.sites.len();
    let jobs: Vec<Job> = imported
        .into_iter()
        .map(|mut j| {
            if let Some(s) = j.site_hint {
                if s.index() >= site_count {
                    j.site_hint = None;
                }
            }
            let cap = match j.site_hint {
                Some(s) => federation.site(s).cluster.total_cores(),
                None => max_cores,
            };
            j.cores = j.cores.min(cap);
            j
        })
        .collect();
    let n_jobs = jobs.len();
    let schedulers: Vec<Box<dyn BatchScheduler>> = federation
        .sites()
        .map(|s| cfg.scheduler.build(s.cluster.total_cores()))
        .collect();
    eprintln!(
        "replaying {n_jobs} jobs from {path} through `{}` at seed {seed} ...",
        cfg.name
    );
    let mut sim = GridSim::new(
        federation,
        schedulers,
        cfg.meta,
        cfg.rc_policy,
        SiteId(cfg.data_home),
        jobs,
        factory,
    );
    if let Some(spec) = &cfg.faults {
        if !spec.is_trivial() {
            sim = sim.with_faults(spec);
        }
    }
    let mut engine: Engine<Event> = Engine::with_capacity(1024);
    let out = sim.run(&mut engine);
    println!(
        "replay complete: {} of {n_jobs} jobs finished by {}, mean wait {:.0} s, {} events",
        out.db.jobs.len(),
        out.end,
        tg_accounting::query::mean_wait_secs(&out.db.jobs),
        engine.delivered()
    );
    if let Some(fr) = &out.fault_report {
        println!(
            "faults: {} crashes, {} outages ({:.1} h downtime), \
             {} killed / {} requeued / {} abandoned / {} checkpointed",
            fr.node_crashes,
            fr.site_outages,
            fr.total_downtime_s() / 3600.0,
            fr.jobs_killed,
            fr.jobs_requeued,
            fr.jobs_abandoned,
            fr.checkpoint_restarts
        );
    }
    if classify {
        // Only shape/timing survive the SWF round trip, so this quantifies
        // what the archive format cannot carry.
        let inferred = classify_all(&out.db, ClassifierMode::WithAttributes);
        let acc = Accuracy::score(&out.truth, &inferred);
        println!(
            "classifier on replayed trace: accuracy {:.3}, macro-F1 {:.3}",
            acc.accuracy, acc.macro_f1
        );
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::{
        format_sync_line, resolve_threads, run_flag_conflict, sync_summary_json, RunFlags,
        SyncProfile,
    };

    fn flags() -> RunFlags {
        RunFlags {
            stream_out: false,
            classify: false,
            reps: 1,
            live_stats_file: false,
        }
    }

    #[test]
    fn default_flags_do_not_conflict() {
        assert_eq!(run_flag_conflict(&flags()), None);
    }

    #[test]
    fn stream_out_alone_is_fine() {
        let f = RunFlags {
            stream_out: true,
            ..flags()
        };
        assert_eq!(run_flag_conflict(&f), None);
    }

    #[test]
    fn stream_out_rejects_classify() {
        let f = RunFlags {
            stream_out: true,
            classify: true,
            ..flags()
        };
        let msg = run_flag_conflict(&f).expect("rejected");
        assert!(msg.contains("--classify"), "{msg}");
    }

    #[test]
    fn stream_out_rejects_multiple_reps() {
        let f = RunFlags {
            stream_out: true,
            reps: 3,
            ..flags()
        };
        let msg = run_flag_conflict(&f).expect("rejected");
        assert!(msg.contains("--stream-out"), "{msg}");
        assert!(msg.contains("--reps 1"), "{msg}");
    }

    #[test]
    fn live_stats_file_rejects_multiple_reps() {
        let f = RunFlags {
            live_stats_file: true,
            reps: 2,
            ..flags()
        };
        let msg = run_flag_conflict(&f).expect("rejected");
        assert!(msg.contains("--live-stats=FILE"), "{msg}");
    }

    #[test]
    fn live_stats_file_single_rep_is_fine() {
        let f = RunFlags {
            live_stats_file: true,
            ..flags()
        };
        assert_eq!(run_flag_conflict(&f), None);
    }

    #[test]
    fn classify_with_reps_is_fine_without_stream_out() {
        let f = RunFlags {
            classify: true,
            reps: 5,
            live_stats_file: true,
            stream_out: false,
        };
        // live_stats_file + reps still conflicts; classify itself is fine.
        assert!(run_flag_conflict(&f).is_some());
        let f2 = RunFlags {
            classify: true,
            reps: 5,
            ..flags()
        };
        assert_eq!(run_flag_conflict(&f2), None);
    }

    #[test]
    fn threads_zero_resolves_to_detected_cores() {
        assert_eq!(resolve_threads(0, Some(8)), 8);
        assert_eq!(resolve_threads(0, Some(1)), 1);
    }

    #[test]
    fn threads_zero_without_detection_degrades_to_serial() {
        assert_eq!(resolve_threads(0, None), 1);
    }

    #[test]
    fn explicit_threads_ignore_detection() {
        assert_eq!(resolve_threads(3, Some(16)), 3);
        assert_eq!(resolve_threads(1, None), 1);
    }

    fn sample_sync() -> SyncProfile {
        let sketch = tg_des::sketch::SketchSummary {
            count: 5,
            mean: 1e-6,
            p50: 1e-6,
            p95: 2e-6,
            p99: 3e-6,
            min: 1e-7,
            max: 4e-6,
        };
        SyncProfile {
            shards: 3,
            rounds: 1234,
            coord_events: 900,
            candidate_rounds: 21,
            grant_rounds: 313,
            advances_sent: 313,
            parks_received: 334,
            interlude_messages: 77,
            bound_clamps: 9,
            batched_candidates: 450,
            governor_fired: true,
            governor_at_events: 2048,
            serial_tail_events: 5000,
            recv_spins: 11,
            recv_blocks: 22,
            shard_recv_spins: 33,
            shard_recv_blocks: 44,
            round_wall: sketch.clone(),
            candidate_wall: sketch.clone(),
            grant_occupancy: sketch,
        }
    }

    /// The `--out` summary's sync section is deterministic only: protocol
    /// counters in, wall-clock sketches and spin/block tallies out.
    #[test]
    fn sync_summary_is_deterministic_fields_only() {
        let det = sync_summary_json(&sample_sync());
        assert_eq!(det["rounds"], 1234);
        assert_eq!(det["candidate_rounds"], 21);
        assert_eq!(det["grant_rounds"], 313);
        assert_eq!(det["batched_candidates"], 450);
        assert_eq!(det["interlude_messages"], 77);
        assert_eq!(det["governor"]["fired"], true);
        assert_eq!(det["governor"]["at_events"], 2048);
        assert_eq!(det["governor"]["serial_tail_events"], 5000);
        let fields = det.as_object().unwrap();
        for noisy in ["round_wall", "candidate_wall", "recv_spins", "recv_blocks"] {
            assert!(
                !fields.iter().any(|(k, _)| k == noisy),
                "wall-clock field {noisy} leaked into the deterministic summary"
            );
        }
    }

    /// The human `sync:` line renders its counters from the same value the
    /// summary embeds — one formatting path, no drift.
    #[test]
    fn sync_line_renders_from_the_summary_value() {
        let sync = sample_sync();
        let det = sync_summary_json(&sync);
        let line = format_sync_line(&det, &sync);
        assert!(line.starts_with("sync: 3 shards, 1234 rounds"), "{line}");
        assert!(line.contains("21 candidate"), "{line}");
        assert!(line.contains("313 grant"), "{line}");
        assert!(line.contains("450 batched"), "{line}");
        assert!(
            line.contains("governor folded@2048 (5000 serial tail)"),
            "{line}"
        );
    }
}
