//! # teragrid-repro — umbrella crate
//!
//! Re-exports the public faces of the workspace crates so the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`) can
//! use one import, and so downstream users get a single dependency:
//!
//! ```
//! use teragrid_repro::prelude::*;
//!
//! let out = ScenarioConfig::baseline(50, 2).build().run(1);
//! assert!(!out.db.jobs.is_empty());
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

/// One-stop imports for driving the simulator end to end.
pub mod prelude {
    pub use tg_accounting::{AccountingDb, ChargePolicy, JobRecord};
    pub use tg_core::report::{
        FieldShares, MetricsReport, ModalityShares, ModalityTrend, UsageReport,
    };
    pub use tg_core::{
        aggregate_profiles, classify_all, replicate, replicate_with, run_sweep, Accuracy,
        ClassifierMode, DegradeWindow, EngineProfile, FaultReport, FaultSpec, Governor,
        IngestFaults, MetricsSnapshot, Modality, NodeCrashSpec, OutagePolicy, OutageWindow,
        RecordStreaming, RunOptions, Scenario, ScenarioConfig, SimOutput, SyncProfile,
    };
    pub use tg_des::{RngFactory, SimDuration, SimTime};
    pub use tg_model::{ConfigLibrary, Federation, SiteConfig, SiteId};
    pub use tg_sched::{MetaPolicy, RcPolicy, RetryPolicy, SchedulerKind};
    pub use tg_workload::{
        GeneratorConfig, Job, JobId, Modality as WorkloadModality, ModalityProfile, PopulationMix,
        WorkloadGenerator,
    };
}

pub use prelude::*;
